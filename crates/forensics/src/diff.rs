//! Nearest-linearization diff: the smallest single edit that makes a minimal
//! witness pass.
//!
//! A minimal witness says *what* cannot be linearized; the nearest fix says
//! *how close* the history came. Three edit families are tried in order of
//! increasing violence, each enumerated deterministically, first success
//! wins:
//!
//! 1. **Relax one real-time edge** — pick a precedence edge `A ≺ B` (the
//!    response of `A` precedes the invocation of `B`) and delay `A`'s
//!    response until just after `B`'s invocation, making the two operations
//!    concurrent. This is exactly the similarity relation of Definition 7.1
//!    read backwards: the repaired history's order is a subset of the
//!    witness's, every value untouched. When this fixes the history, the bug
//!    is a pure *ordering* bug.
//! 2. **Rewrite one response** — replace a single response value with another
//!    value observed in the witness (or `empty`). When this fixes the
//!    history, the bug is a *value* bug: one operation answered wrongly.
//! 3. **Remove one operation** — drop a complete pair outright. On a locally
//!    minimal witness (the output of [`mod@crate::shrink`]) every single removal
//!    passes, so this fallback always succeeds and the diff is total on the
//!    pipeline's own witnesses.

use crate::check::check_history;
use linrv_history::{Event, History, OpId, OpValue};
use linrv_spec::ObjectKind;
use std::collections::BTreeSet;
use std::fmt;

/// The smallest single edit found that makes the witness linearizable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NearestFix {
    /// Relaxing the real-time edge `first ≺ second` (delaying `first`'s
    /// response past `second`'s invocation) makes the history pass.
    RelaxEdge {
        /// The earlier operation of the relaxed edge.
        first: OpId,
        /// The later operation of the relaxed edge.
        second: OpId,
    },
    /// Rewriting one response makes the history pass.
    RewriteResponse {
        /// The operation whose response is rewritten.
        op: OpId,
        /// The recorded (wrong) response.
        from: OpValue,
        /// A response under which the history linearizes.
        to: OpValue,
    },
    /// Removing one complete operation makes the history pass.
    RemoveOp {
        /// The removed operation.
        op: OpId,
    },
}

impl fmt::Display for NearestFix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NearestFix::RelaxEdge { first, second } => write!(
                f,
                "relax one real-time edge: the history linearizes if {first}'s response \
                 is delayed past {second}'s invocation (ordering bug)"
            ),
            NearestFix::RewriteResponse { op, from, to } => write!(
                f,
                "rewrite one response: the history linearizes if {op} returns {to} \
                 instead of {from} (value bug)"
            ),
            NearestFix::RemoveOp { op } => {
                write!(
                    f,
                    "remove one operation: without {op} the history linearizes"
                )
            }
        }
    }
}

fn passes(kind: ObjectKind, history: &History) -> bool {
    history.is_well_formed() && !check_history(kind, history).is_violation()
}

/// Tries relaxing each real-time edge `a ≺ b` by moving `a`'s response event
/// to just after `b`'s invocation event.
fn try_relax_edges(kind: ObjectKind, history: &History) -> Option<NearestFix> {
    let records = history.operations();
    let mut edges: Vec<(usize, usize, OpId, OpId)> = Vec::new();
    for a in records.iter().filter(|r| r.is_complete()) {
        let res_a = a.response_index.expect("complete");
        for b in records.iter().filter(|r| res_a < r.invocation_index) {
            edges.push((res_a, b.invocation_index, a.id, b.id));
        }
    }
    edges.sort();
    for (res_a, inv_b, a, b) in edges {
        let mut events: Vec<Event> = history.events().to_vec();
        let response = events.remove(res_a);
        // After the removal `b`'s invocation sits at `inv_b - 1`; inserting at
        // `inv_b` places the response immediately after it.
        events.insert(inv_b, response);
        if passes(kind, &History::from_events(events)) {
            return Some(NearestFix::RelaxEdge {
                first: a,
                second: b,
            });
        }
    }
    None
}

/// Tries rewriting each response to each other value observed in the witness.
fn try_rewrite_responses(kind: ObjectKind, history: &History) -> Option<NearestFix> {
    let mut domain: BTreeSet<OpValue> = BTreeSet::new();
    for record in history.operations() {
        domain.insert(record.operation.arg.clone());
        if let Some(response) = &record.response {
            domain.insert(response.clone());
        }
    }
    domain.insert(OpValue::Empty);
    domain.remove(&OpValue::Unit);
    for record in history.complete_operations() {
        let from = record.response.clone().expect("complete");
        let res_index = record.response_index.expect("complete");
        for to in &domain {
            if *to == from {
                continue;
            }
            let mut events: Vec<Event> = history.events().to_vec();
            events[res_index] = Event::response(record.process, record.id, to.clone());
            if passes(kind, &History::from_events(events)) {
                return Some(NearestFix::RewriteResponse {
                    op: record.id,
                    from,
                    to: to.clone(),
                });
            }
        }
    }
    None
}

/// Tries removing each complete operation outright.
fn try_remove_ops(kind: ObjectKind, history: &History) -> Option<NearestFix> {
    for record in history.complete_operations() {
        let events: Vec<Event> = history
            .events()
            .iter()
            .filter(|event| event.op_id != record.id)
            .cloned()
            .collect();
        if passes(kind, &History::from_events(events)) {
            return Some(NearestFix::RemoveOp { op: record.id });
        }
    }
    None
}

/// Finds the nearest single-edit fix for a violating history, or `None` when
/// no single edit repairs it (impossible for locally minimal witnesses, where
/// removing any one operation passes).
pub fn nearest_fix(kind: ObjectKind, history: &History) -> Option<NearestFix> {
    try_relax_edges(kind, history)
        .or_else(|| try_rewrite_responses(kind, history))
        .or_else(|| try_remove_ops(kind, history))
}

#[cfg(test)]
mod tests {
    use super::*;
    use linrv_history::{HistoryBuilder, ProcessId};
    use linrv_spec::ops::queue;

    #[test]
    fn pure_ordering_bugs_diff_to_a_relaxed_edge() {
        // Enq(1); Enq(2); Deq():2 — sequential FIFO inversion. Delaying
        // Enq(1)'s response past Enq(2)'s invocation makes them concurrent
        // and the history passes. The enqueues run on different processes so
        // the relaxed history stays well formed (a process cannot have two
        // operations in flight).
        let mut b = HistoryBuilder::new();
        let p0 = ProcessId::new(0);
        let e1 = b.complete(p0, queue::enqueue(1), OpValue::Bool(true));
        b.complete(ProcessId::new(1), queue::enqueue(2), OpValue::Bool(true));
        b.complete(p0, queue::dequeue(), OpValue::Int(2));
        let history = b.build();
        let fix = nearest_fix(ObjectKind::Queue, &history).expect("single edit fixes");
        match fix {
            NearestFix::RelaxEdge { first, .. } => assert_eq!(first, e1),
            other => panic!("expected RelaxEdge, got {other:?}"),
        }
    }

    #[test]
    fn value_bugs_diff_to_a_rewritten_response() {
        // Enq(1); Deq():7 — no reordering helps, but Deq returning 1 would.
        let mut b = HistoryBuilder::new();
        let p = ProcessId::new(0);
        b.complete(p, queue::enqueue(1), OpValue::Bool(true));
        let d = b.complete(p, queue::dequeue(), OpValue::Int(7));
        let history = b.build();
        let fix = nearest_fix(ObjectKind::Queue, &history).expect("single edit fixes");
        assert_eq!(
            fix,
            NearestFix::RewriteResponse {
                op: d,
                from: OpValue::Int(7),
                to: OpValue::Int(1),
            }
        );
        assert!(fix.to_string().contains("value bug"));
    }

    #[test]
    fn locally_minimal_witnesses_always_have_a_fix() {
        // Deq():7 with nothing else: only removal helps.
        let mut b = HistoryBuilder::new();
        let d = b.complete(ProcessId::new(0), queue::dequeue(), OpValue::Int(7));
        let history = b.build();
        let fix = nearest_fix(ObjectKind::Queue, &history);
        // Rewriting Deq's response to `empty` also linearizes, and rewrites
        // are tried before removals.
        assert!(matches!(
            fix,
            Some(NearestFix::RewriteResponse { op, to: OpValue::Empty, .. }) if op == d
        ));
    }

    #[test]
    fn members_need_no_fix_search_to_terminate() {
        let mut b = HistoryBuilder::new();
        b.complete(ProcessId::new(0), queue::enqueue(1), OpValue::Bool(true));
        let history = b.build();
        // Not a violation: any "fix" is vacuous, but the search still returns
        // a (trivial) first success deterministically.
        assert!(nearest_fix(ObjectKind::Queue, &history).is_some());
    }
}
