//! ASCII rendering of an [`Explanation`]: a one-screen violation report with
//! a process-lane timeline, culprit operations highlighted.

use crate::explain::Explanation;
use linrv_history::{History, OpId};
use std::collections::BTreeSet;
use std::fmt::Write as _;

/// Renders a history as process-lane interval bars, drawing the operations in
/// `culprits` with `#===#` bars (plain operations keep `|---|`).
///
/// Same geometry as `linrv_history::display::render_timeline`: one cell per
/// event, interval from the invocation's event index to the response's, an
/// open `>` end for pending operations.
pub fn render_timeline(history: &History, culprits: &BTreeSet<OpId>) -> String {
    const CELL: usize = 4;
    let records = history.operations();
    let n_events = history.len().max(1);
    let width = n_events * CELL + 2;

    let mut processes: Vec<_> = history.processes().into_iter().collect();
    processes.sort();

    let mut out = String::new();
    for p in processes {
        let mut line: Vec<char> = vec![' '; width];
        let mut labels: Vec<(usize, String)> = Vec::new();
        for r in records.iter().filter(|r| r.process == p) {
            let accused = culprits.contains(&r.id);
            let (end_mark, fill) = if accused { ('#', '=') } else { ('|', '-') };
            let start = r.invocation_index * CELL;
            let end = match r.response_index {
                Some(idx) => idx * CELL + CELL - 1,
                None => width - 1,
            };
            line[start] = end_mark;
            for cell in line.iter_mut().take(end.min(width - 1)).skip(start + 1) {
                *cell = fill;
            }
            if r.response_index.is_some() {
                line[end.min(width - 1)] = end_mark;
            } else {
                line[width - 1] = '>';
            }
            let label = match &r.response {
                Some(v) => format!("{}:{}", r.operation, v),
                None => format!("{}:…", r.operation),
            };
            labels.push((start, label));
        }
        let mut label_line: Vec<char> = vec![' '; width + 40];
        for (start, label) in labels {
            for (i, ch) in label.chars().enumerate() {
                if start + 1 + i < label_line.len() {
                    label_line[start + 1 + i] = ch;
                }
            }
        }
        let _ = write!(out, "{p}: ");
        out.push_str(line.iter().collect::<String>().trim_end());
        out.push('\n');
        out.push_str("    ");
        out.push_str(label_line.iter().collect::<String>().trim_end());
        out.push('\n');
    }
    out
}

/// Renders the full ASCII report: verdict, diagnosis, minimization summary,
/// timeline and nearest fix. Byte-deterministic for a given explanation.
pub fn render_report(explanation: &Explanation) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "violation ({}): {}",
        explanation.kind, explanation.explanation
    );
    if let Some(pattern) = &explanation.pattern {
        let values = if pattern.values.is_empty() {
            String::new()
        } else {
            format!(
                " [{}]",
                pattern
                    .values
                    .iter()
                    .map(i64::to_string)
                    .collect::<Vec<_>>()
                    .join(", ")
            )
        };
        let _ = writeln!(
            out,
            "bad pattern: {}{values} — {}",
            pattern.name, pattern.message
        );
    }
    if let Some(frontier) = &explanation.frontier {
        let _ = writeln!(out, "general search: {frontier}");
    }
    let kept = explanation.witness.complete_operations().count();
    let _ = writeln!(
        out,
        "witness: {kept} of {} complete operations kept ({} removed, {} shrink checks, \
         {} narrowing steps)",
        explanation.original_ops,
        explanation.removed,
        explanation.shrink_checks,
        explanation.narrow_steps
    );
    out.push('\n');
    out.push_str(&render_timeline(
        &explanation.witness,
        &explanation.culprits(),
    ));
    if let Some(fix) = &explanation.fix {
        let _ = writeln!(out, "\nnearest fix: {fix}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explain::explain;
    use linrv_history::{HistoryBuilder, OpValue, ProcessId};
    use linrv_spec::{ops::queue, ObjectKind};

    fn never_added() -> Explanation {
        let mut b = HistoryBuilder::new();
        let p = ProcessId::new(0);
        b.complete(p, queue::enqueue(1), OpValue::Bool(true));
        b.complete(p, queue::dequeue(), OpValue::Int(1));
        b.complete(p, queue::dequeue(), OpValue::Int(7));
        explain(ObjectKind::Queue, &b.build()).expect("violating")
    }

    #[test]
    fn reports_name_the_pattern_and_highlight_culprits() {
        let report = render_report(&never_added());
        assert!(report.starts_with("violation (queue):"));
        assert!(report.contains("bad pattern: never-added [7]"));
        assert!(report.contains("nearest fix:"));
        assert!(report.contains('#'), "culprit bars use # ends:\n{report}");
        assert!(report.contains("Dequeue():7"));
    }

    #[test]
    fn plain_operations_keep_plain_bars() {
        let mut b = HistoryBuilder::new();
        let p0 = ProcessId::new(0);
        // Keep an innocent op in the witness: two dequeues of the same value
        // are both load-bearing, the enqueue of 5 is matched but innocent…
        b.complete(p0, queue::enqueue(5), OpValue::Bool(true));
        b.complete(p0, queue::dequeue(), OpValue::Int(5));
        b.complete(ProcessId::new(1), queue::dequeue(), OpValue::Int(5));
        let explanation = explain(ObjectKind::Queue, &b.build()).expect("violating");
        let timeline = render_timeline(&explanation.witness, &explanation.culprits());
        assert!(timeline.contains('#'));
    }

    #[test]
    fn rendering_is_deterministic() {
        let a = render_report(&never_added());
        let b = render_report(&never_added());
        assert_eq!(a, b);
    }
}
