//! Forensics metrics: what each phase of `linrv explain` costs.
//!
//! The explanation pipeline is a loop of candidate edits re-decided by the
//! checker, so its cost is best understood as *checker invocations spent per
//! phase*. These families make that visible on a live `linrv explain --stats`
//! (or `linrv check --explain --stats`) run.

use linrv_obs::{Counter, Histogram, MetricKind, Registry};
use std::sync::OnceLock;

const SHRINK_CHECKS: &str = "linrv_explain_shrink_checks_total";
const SHRINK_CHECKS_HELP: &str = "checker invocations spent by ddmin witness shrinking";
const NARROW_STEPS: &str = "linrv_explain_narrow_steps_total";
const NARROW_STEPS_HELP: &str = "accepted interval-narrowing swaps across explanations";
const SHRINK_NS: &str = "linrv_explain_shrink_ns";
const SHRINK_NS_HELP: &str = "ddmin shrinking wall time per explanation, nanoseconds";
const NARROW_NS: &str = "linrv_explain_narrow_ns";
const NARROW_NS_HELP: &str = "interval narrowing wall time per explanation, nanoseconds";
const DIFF_NS: &str = "linrv_explain_diff_ns";
const DIFF_NS_HELP: &str = "nearest-linearization diff wall time per explanation, nanoseconds";

/// Checker invocations spent by ddmin shrinking.
pub fn shrink_checks_total() -> &'static Counter {
    static SLOT: OnceLock<Counter> = OnceLock::new();
    SLOT.get_or_init(|| Registry::global().counter(SHRINK_CHECKS, SHRINK_CHECKS_HELP))
}

/// Accepted interval-narrowing swaps.
pub fn narrow_steps_total() -> &'static Counter {
    static SLOT: OnceLock<Counter> = OnceLock::new();
    SLOT.get_or_init(|| Registry::global().counter(NARROW_STEPS, NARROW_STEPS_HELP))
}

/// Per-explanation shrinking latency histogram.
pub fn shrink_ns() -> &'static Histogram {
    static SLOT: OnceLock<Histogram> = OnceLock::new();
    SLOT.get_or_init(|| Registry::global().histogram(SHRINK_NS, SHRINK_NS_HELP))
}

/// Per-explanation narrowing latency histogram.
pub fn narrow_ns() -> &'static Histogram {
    static SLOT: OnceLock<Histogram> = OnceLock::new();
    SLOT.get_or_init(|| Registry::global().histogram(NARROW_NS, NARROW_NS_HELP))
}

/// Per-explanation nearest-fix search latency histogram.
pub fn diff_ns() -> &'static Histogram {
    static SLOT: OnceLock<Histogram> = OnceLock::new();
    SLOT.get_or_init(|| Registry::global().histogram(DIFF_NS, DIFF_NS_HELP))
}

/// Declares the forensics families in the global registry so exports list
/// them even before any explanation runs.
pub fn declare() {
    let registry = Registry::global();
    registry.declare(SHRINK_CHECKS, MetricKind::Counter, SHRINK_CHECKS_HELP);
    registry.declare(NARROW_STEPS, MetricKind::Counter, NARROW_STEPS_HELP);
    registry.declare(SHRINK_NS, MetricKind::Histogram, SHRINK_NS_HELP);
    registry.declare(NARROW_NS, MetricKind::Histogram, NARROW_NS_HELP);
    registry.declare(DIFF_NS, MetricKind::Histogram, DIFF_NS_HELP);
}
