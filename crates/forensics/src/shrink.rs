//! Delta-debugging trace shrinking: reduce a failing history to a locally
//! minimal violating witness.
//!
//! General linearizability monitoring is NP-hard (Hamza), so a raw violating
//! trace of hundreds of events is a poor bug report. Shrinking exploits two
//! facts: linearizability is prefix-closed, so *removal of complete pairs*
//! preserves well-formedness; and re-checking a candidate is cheap with the
//! specialized log-linear monitors. The ddmin-style loop below removes
//! shrinking chunks of complete operations while the violation persists; it
//! terminates only after a full pass at chunk size one finds no removable
//! operation — which is exactly the *local minimality* certificate: removing
//! any single complete pair makes the trace linearizable.
//!
//! Pending invocations (crashed processes) are never removed: they are part
//! of the scenario's story and Definition 4.2's complete-or-drop handling
//! already lets the checker discount them.

use crate::check::check_history;
use crate::metrics;
use linrv_history::{History, OpId};
use linrv_spec::ObjectKind;
use std::collections::BTreeSet;

/// The result of shrinking one failing history.
#[derive(Debug, Clone)]
pub struct ShrinkOutcome {
    /// The locally minimal violating history.
    pub history: History,
    /// Complete operations removed from the original.
    pub removed: usize,
    /// Checker invocations spent.
    pub checks: usize,
}

fn violates(kind: ObjectKind, history: &History) -> bool {
    check_history(kind, history).is_violation()
}

fn complete_ids(history: &History) -> Vec<OpId> {
    history
        .complete_operations()
        .map(|record| record.id)
        .collect()
}

/// Removes the events of the given complete operations from `history`.
fn remove_ops(history: &History, ids: &BTreeSet<OpId>) -> History {
    History::from_events(
        history
            .events()
            .iter()
            .filter(|event| !ids.contains(&event.op_id))
            .cloned()
            .collect(),
    )
}

/// Shrinks `failing` (a history [`check_history`] rejects) to a locally
/// minimal violating history: removing any single complete pair of the result
/// makes it pass.
///
/// # Panics
///
/// Panics if `failing` is not actually a violation of `kind`.
pub fn shrink(kind: ObjectKind, failing: &History) -> ShrinkOutcome {
    assert!(
        violates(kind, failing),
        "shrink requires a violating history"
    );
    let started = std::time::Instant::now();
    let original_ops = complete_ids(failing).len();
    let mut current = failing.clone();
    let mut checks = 0usize;
    let mut chunk = complete_ids(&current).len().div_ceil(2).max(1);
    loop {
        let ids = complete_ids(&current);
        if ids.is_empty() {
            break;
        }
        chunk = chunk.min(ids.len());
        let mut progressed = false;
        let mut start = 0;
        while start < ids.len() {
            let candidate_ids: BTreeSet<OpId> = ids[start..(start + chunk).min(ids.len())]
                .iter()
                .copied()
                .collect();
            let candidate = remove_ops(&current, &candidate_ids);
            checks += 1;
            if violates(kind, &candidate) {
                current = candidate;
                progressed = true;
                break;
            }
            start += chunk;
        }
        if progressed {
            // Same chunk size, fresh pass over the reduced history.
            continue;
        }
        if chunk == 1 {
            // A full single-removal pass with no hit: every remaining complete
            // pair is load-bearing — the local-minimality certificate.
            break;
        }
        chunk = (chunk / 2).max(1);
    }
    metrics::shrink_checks_total().add(checks as u64);
    metrics::shrink_ns().record(u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX));
    ShrinkOutcome {
        removed: original_ops - complete_ids(&current).len(),
        history: current,
        checks,
    }
}

/// `true` when `history` violates `kind` and removing any single complete pair
/// makes it pass — the property [`shrink`] certifies for its result.
pub fn is_locally_minimal(kind: ObjectKind, history: &History) -> bool {
    if !violates(kind, history) {
        return false;
    }
    complete_ids(history).into_iter().all(|id| {
        let removed = remove_ops(history, &BTreeSet::from([id]));
        !violates(kind, &removed)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use linrv_history::{HistoryBuilder, OpValue, ProcessId};
    use linrv_spec::ops::{counter, queue};

    fn failing_queue_history(noise: usize) -> History {
        let mut b = HistoryBuilder::new();
        let p = ProcessId::new(0);
        // Noise: matched enqueue/dequeue pairs that are individually removable.
        for i in 0..noise {
            b.complete(p, queue::enqueue(100 + i as i64), OpValue::Bool(true));
            b.complete(p, queue::dequeue(), OpValue::Int(100 + i as i64));
        }
        // The seeded bug: a dequeue returning a value never enqueued.
        b.complete(p, queue::dequeue(), OpValue::Int(-1));
        b.build()
    }

    #[test]
    fn shrinking_preserves_the_violation_and_reaches_local_minimality() {
        let failing = failing_queue_history(10);
        let outcome = shrink(ObjectKind::Queue, &failing);
        assert!(violates(ObjectKind::Queue, &outcome.history));
        assert!(is_locally_minimal(ObjectKind::Queue, &outcome.history));
        assert_eq!(outcome.removed, 20);
        assert_eq!(outcome.history.complete_operations().count(), 1);
        assert!(outcome.checks > 0);
    }

    #[test]
    fn shrinking_is_deterministic() {
        let failing = failing_queue_history(7);
        let a = shrink(ObjectKind::Queue, &failing);
        let b = shrink(ObjectKind::Queue, &failing);
        assert_eq!(a.history.events(), b.history.events());
        assert_eq!(a.checks, b.checks);
    }

    #[test]
    fn already_minimal_histories_survive_untouched() {
        // Two inc()s returning the same value: both are load-bearing.
        let mut b = HistoryBuilder::new();
        b.complete(ProcessId::new(0), counter::inc(), OpValue::Int(0));
        b.complete(ProcessId::new(1), counter::inc(), OpValue::Int(0));
        let failing = b.build();
        assert!(violates(ObjectKind::Counter, &failing));
        let outcome = shrink(ObjectKind::Counter, &failing);
        assert_eq!(outcome.removed, 0);
        assert_eq!(outcome.history.events(), failing.events());
        assert!(is_locally_minimal(ObjectKind::Counter, &outcome.history));
    }

    #[test]
    fn pending_operations_are_kept() {
        let mut b = HistoryBuilder::new();
        let p = ProcessId::new(0);
        b.invoke(ProcessId::new(1), queue::enqueue(9));
        b.complete(p, queue::dequeue(), OpValue::Int(-1));
        let failing = b.build();
        let outcome = shrink(ObjectKind::Queue, &failing);
        assert_eq!(outcome.history.pending_operations().count(), 1);
        assert!(violates(ObjectKind::Queue, &outcome.history));
    }

    #[test]
    fn local_minimality_rejects_padded_witnesses() {
        let failing = failing_queue_history(3);
        assert!(!is_locally_minimal(ObjectKind::Queue, &failing));
        assert!(!is_locally_minimal(ObjectKind::Queue, &History::new()));
    }
}
