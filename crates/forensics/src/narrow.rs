//! Interval narrowing: tighten the invocation/response windows of a minimal
//! witness while the violation (and its diagnosis) persists.
//!
//! After ddmin shrinking, every surviving operation is load-bearing, but its
//! *interval* may still be much wider than the conflict requires — wide
//! intervals mean few real-time precedence edges, which hides the forced
//! ordering the violation hinges on. Narrowing makes that ordering explicit
//! by repeatedly commuting an adjacent `(invocation of X, response of Y)`
//! event pair into `(response of Y, invocation of X)`: the swap shortens both
//! intervals by one slot and can only **add** a precedence edge (`Y ≺ X`
//! where the two previously overlapped), so the real-time order of the result
//! extends the witness's and a violation can only be preserved, never
//! repaired.
//!
//! Adding edges could in principle manufacture a *different*, artificially
//! sequential bug on top of the original one. Each swap is therefore guarded
//! twice: the candidate must still violate, **and** it must diagnose to the
//! same bad-pattern name (or the same absence of one) as the input — trading
//! the recorded race for a tidier but unrelated story is rejected.
//!
//! Termination: each accepted swap strictly shrinks the total interval
//! width, and swaps of like-kinded events (which would permute concurrent
//! operations without tightening anything) are never attempted.

use crate::check::{check_history, pattern_name};
use crate::metrics;
use linrv_history::History;
use linrv_spec::ObjectKind;

/// The result of narrowing one violating history.
#[derive(Debug, Clone)]
pub struct NarrowOutcome {
    /// The narrowed history: same operations and responses, tighter windows.
    pub history: History,
    /// Accepted swaps (each shortens two intervals by one event slot).
    pub steps: usize,
    /// Checker invocations spent on candidate swaps.
    pub checks: usize,
}

/// Narrows `failing` (a history [`check_history`] rejects) by tightening
/// operation windows while the violation and its diagnosis persist.
///
/// # Panics
///
/// Panics if `failing` is not actually a violation of `kind`.
pub fn narrow(kind: ObjectKind, failing: &History) -> NarrowOutcome {
    assert!(
        check_history(kind, failing).is_violation(),
        "narrow requires a violating history"
    );
    let started = std::time::Instant::now();
    let diagnosis = pattern_name(kind, failing);
    let mut current = failing.clone();
    let mut steps = 0usize;
    let mut checks = 0usize;
    loop {
        let mut progressed = false;
        let mut i = 0;
        while i + 1 < current.events().len() {
            let first = &current.events()[i];
            let second = &current.events()[i + 1];
            if first.is_invocation() && second.is_response() && first.op_id != second.op_id {
                let mut events = current.events().to_vec();
                events.swap(i, i + 1);
                let candidate = History::from_events(events);
                checks += 1;
                if candidate.is_well_formed()
                    && check_history(kind, &candidate).is_violation()
                    && pattern_name(kind, &candidate) == diagnosis
                {
                    current = candidate;
                    steps += 1;
                    progressed = true;
                }
            }
            i += 1;
        }
        if !progressed {
            break;
        }
    }
    metrics::narrow_steps_total().add(steps as u64);
    metrics::narrow_ns().record(u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX));
    NarrowOutcome {
        history: current,
        steps,
        checks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use linrv_history::{HistoryBuilder, OpValue, ProcessId, RealTimeOrder};
    use linrv_spec::ops::{queue, register};

    /// Two overlapping dequeues both returning 5 after one enqueue of 5: the
    /// duplicate-remove is independent of the overlap, so narrowing may
    /// serialize the two dequeues without changing the diagnosis.
    fn overlapping_duplicate_dequeues() -> History {
        let mut b = HistoryBuilder::new();
        let p0 = ProcessId::new(0);
        let p1 = ProcessId::new(1);
        b.complete(p0, queue::enqueue(5), OpValue::Bool(true));
        let d0 = b.invoke(p0, queue::dequeue());
        let d1 = b.invoke(p1, queue::dequeue());
        b.respond(d0, OpValue::Int(5));
        b.respond(d1, OpValue::Int(5));
        b.build()
    }

    #[test]
    fn narrowing_preserves_violation_and_diagnosis() {
        let failing = overlapping_duplicate_dequeues();
        let before = pattern_name(ObjectKind::Queue, &failing);
        assert_eq!(before, Some("duplicate-remove"));
        let outcome = narrow(ObjectKind::Queue, &failing);
        assert!(check_history(ObjectKind::Queue, &outcome.history).is_violation());
        assert_eq!(pattern_name(ObjectKind::Queue, &outcome.history), before);
        assert!(outcome.steps > 0, "the overlapping dequeues can serialize");
        assert_eq!(outcome.history.len(), failing.len());
    }

    #[test]
    fn narrowing_only_adds_precedence_edges() {
        let failing = overlapping_duplicate_dequeues();
        let outcome = narrow(ObjectKind::Queue, &failing);
        let before = RealTimeOrder::full_order(&failing);
        let after = RealTimeOrder::full_order(&outcome.history);
        assert!(before.subset_of(&after));
    }

    #[test]
    fn narrowing_is_deterministic() {
        let failing = overlapping_duplicate_dequeues();
        let a = narrow(ObjectKind::Queue, &failing);
        let b = narrow(ObjectKind::Queue, &failing);
        assert_eq!(a.history.events(), b.history.events());
        assert_eq!(a.steps, b.steps);
        assert_eq!(a.checks, b.checks);
    }

    #[test]
    fn overlap_essential_to_the_diagnosis_is_kept() {
        // A stale read forced only if the read does NOT overlap the second
        // write; narrowing must not commute events when the violation (or its
        // name) would change. Build: w(1) complete, w(2) complete, read 1.
        let mut b = HistoryBuilder::new();
        let p0 = ProcessId::new(0);
        b.complete(p0, register::write(1), OpValue::Bool(true));
        b.complete(p0, register::write(2), OpValue::Bool(true));
        b.complete(p0, register::read(), OpValue::Int(1));
        let failing = b.build();
        assert_eq!(
            pattern_name(ObjectKind::Register, &failing),
            Some("stale-read")
        );
        let outcome = narrow(ObjectKind::Register, &failing);
        // Already sequential: nothing to tighten.
        assert_eq!(outcome.steps, 0);
        assert_eq!(outcome.history.events(), failing.events());
    }
}
