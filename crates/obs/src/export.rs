//! Exporters: Prometheus text exposition, a JSON snapshot document, and the
//! one-screen human report the CLI prints for `--stats`.
//!
//! All three are hand-rolled over [`MetricsSnapshot`] — consistent with the
//! workspace's vendored-stub dependency policy (the vendored `serde` is a
//! stub, so no derive-based serialization exists to lean on).

use crate::metric::{bucket_le, HistogramSnapshot, BUCKETS};
use crate::registry::{FamilySnapshot, MetricKind, MetricsSnapshot, SeriesValue};
use std::fmt::Write as _;
use std::io;
use std::path::Path;

/// Schema tag written into JSON snapshots.
pub const JSON_SCHEMA: &str = "linrv-obs/1";

fn labels_inline(labels: &[(String, String)]) -> String {
    let mut out = String::new();
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{k}=\"{v}\"");
    }
    out
}

/// `{a="1",b="2"}` or the empty string for unlabeled series.
fn labels_block(labels: &[(String, String)]) -> String {
    if labels.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", labels_inline(labels))
    }
}

/// `{a="1",le="255"}` — the label block with `le` appended (histograms).
fn labels_block_with_le(labels: &[(String, String)], le: &str) -> String {
    let inner = labels_inline(labels);
    if inner.is_empty() {
        format!("{{le=\"{le}\"}}")
    } else {
        format!("{{{inner},le=\"{le}\"}}")
    }
}

fn prometheus_histogram(
    out: &mut String,
    name: &str,
    labels: &[(String, String)],
    hist: &HistogramSnapshot,
) {
    let highest = (0..BUCKETS).rev().find(|&i| hist.buckets[i] > 0);
    let mut cumulative = 0u64;
    if let Some(highest) = highest {
        for i in 0..=highest {
            cumulative += hist.buckets[i];
            if hist.buckets[i] == 0 && i != highest {
                continue;
            }
            let _ = writeln!(
                out,
                "{name}_bucket{} {cumulative}",
                labels_block_with_le(labels, &bucket_le(i).to_string())
            );
        }
    }
    let _ = writeln!(
        out,
        "{name}_bucket{} {cumulative}",
        labels_block_with_le(labels, "+Inf")
    );
    let _ = writeln!(out, "{name}_sum{} {}", labels_block(labels), hist.sum);
    let _ = writeln!(out, "{name}_count{} {}", labels_block(labels), hist.count);
}

fn json_escape(raw: &str) -> String {
    let mut out = String::with_capacity(raw.len() + 2);
    for ch in raw.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn json_labels(labels: &[(String, String)]) -> String {
    let mut out = String::from("{");
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{}\":\"{}\"", json_escape(k), json_escape(v));
    }
    out.push('}');
    out
}

fn json_histogram(hist: &HistogramSnapshot) -> String {
    let mut buckets = String::from("[");
    let mut first = true;
    for i in 0..BUCKETS {
        if hist.buckets[i] == 0 {
            continue;
        }
        if !first {
            buckets.push(',');
        }
        first = false;
        let _ = write!(buckets, "[{},{}]", bucket_le(i), hist.buckets[i]);
    }
    buckets.push(']');
    format!(
        "\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"p50\":{},\"p90\":{},\"p99\":{},\"buckets\":{}",
        hist.count,
        hist.sum,
        hist.min.unwrap_or(0),
        hist.max.unwrap_or(0),
        hist.quantile(0.5),
        hist.quantile(0.9),
        hist.quantile(0.99),
        buckets
    )
}

/// Renders `ns` as a human duration (`842ns`, `1.3µs`, `4.5ms`, `2.1s`).
#[must_use]
pub fn format_ns(ns: u64) -> String {
    if ns < 1_000 {
        format!("{ns}ns")
    } else if ns < 1_000_000 {
        format!("{:.1}µs", ns as f64 / 1_000.0)
    } else if ns < 1_000_000_000 {
        format!("{:.1}ms", ns as f64 / 1_000_000.0)
    } else {
        format!("{:.1}s", ns as f64 / 1_000_000_000.0)
    }
}

/// Histogram sample values are durations when the family name says so.
fn is_duration(name: &str) -> bool {
    name.ends_with("_ns")
}

fn fmt_sample(name: &str, value: u64) -> String {
    if is_duration(name) {
        format_ns(value)
    } else {
        value.to_string()
    }
}

fn report_family(out: &mut String, family: &FamilySnapshot) {
    for series in &family.series {
        let id = format!("{}{}", family.name, labels_block(&series.labels));
        match &series.value {
            SeriesValue::Counter(0) => {}
            SeriesValue::Counter(v) => {
                let _ = writeln!(out, "  {id:<52} {v:>10}");
            }
            SeriesValue::Gauge(v) => {
                let _ = writeln!(out, "  {id:<52} {v:>10}");
            }
            SeriesValue::Histogram(h) if h.count == 0 => {}
            SeriesValue::Histogram(h) => {
                let _ = writeln!(
                    out,
                    "  {id:<52} {:>10} {:>9} {:>9} {:>9}",
                    h.count,
                    fmt_sample(&family.name, h.quantile(0.5)),
                    fmt_sample(&family.name, h.quantile(0.99)),
                    fmt_sample(&family.name, h.max.unwrap_or(0)),
                );
            }
        }
    }
}

impl MetricsSnapshot {
    /// The snapshot in Prometheus text exposition format.
    #[must_use]
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        for family in &self.families {
            let _ = writeln!(out, "# HELP {} {}", family.name, family.help);
            let _ = writeln!(out, "# TYPE {} {}", family.name, family.kind.as_str());
            for series in &family.series {
                match &series.value {
                    SeriesValue::Counter(v) => {
                        let _ =
                            writeln!(out, "{}{} {v}", family.name, labels_block(&series.labels));
                    }
                    SeriesValue::Gauge(v) => {
                        let _ =
                            writeln!(out, "{}{} {v}", family.name, labels_block(&series.labels));
                    }
                    SeriesValue::Histogram(h) => {
                        prometheus_histogram(&mut out, &family.name, &series.labels, h);
                    }
                }
            }
        }
        out
    }

    /// The snapshot as a self-describing JSON document (schema
    /// [`JSON_SCHEMA`]).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"schema\":\"{JSON_SCHEMA}\",\"enabled\":{},\"families\":[",
            self.enabled
        );
        for (i, family) in self.families.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"name\":\"{}\",\"kind\":\"{}\",\"help\":\"{}\",\"series\":[",
                json_escape(&family.name),
                family.kind.as_str(),
                json_escape(&family.help)
            );
            for (j, series) in family.series.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let labels = json_labels(&series.labels);
                match &series.value {
                    SeriesValue::Counter(v) => {
                        let _ = write!(out, "{{\"labels\":{labels},\"value\":{v}}}");
                    }
                    SeriesValue::Gauge(v) => {
                        let _ = write!(out, "{{\"labels\":{labels},\"value\":{v}}}");
                    }
                    SeriesValue::Histogram(h) => {
                        let _ = write!(out, "{{\"labels\":{labels},{}}}", json_histogram(h));
                    }
                }
            }
            out.push_str("]}");
        }
        out.push_str("],\"events\":[");
        for (i, event) in self.events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"seq\":{},\"name\":\"{}\",\"detail\":\"{}\"}}",
                event.seq,
                json_escape(event.name),
                json_escape(&event.detail)
            );
        }
        out.push_str("]}\n");
        out
    }

    /// The one-screen human report: non-zero counters and gauges, histogram
    /// count/p50/p99/max rows, and the tail of the event ring.
    #[must_use]
    pub fn render_report(&self) -> String {
        let mut out = String::new();
        let series: usize = self.families.iter().map(|f| f.series.len()).sum();
        let _ = writeln!(
            out,
            "linrv metrics — {}, {} families, {} series",
            if self.enabled { "enabled" } else { "disabled" },
            self.families.len(),
            series,
        );
        let mut histograms = String::new();
        let mut scalars = String::new();
        for family in &self.families {
            match family.kind {
                MetricKind::Histogram => report_family(&mut histograms, family),
                _ => report_family(&mut scalars, family),
            }
        }
        if !scalars.is_empty() {
            let _ = writeln!(out, "  {:<52} {:>10}", "counters / gauges", "value");
            out.push_str(&scalars);
        }
        if !histograms.is_empty() {
            let _ = writeln!(
                out,
                "  {:<52} {:>10} {:>9} {:>9} {:>9}",
                "histograms", "count", "p50", "p99", "max"
            );
            out.push_str(&histograms);
        }
        for event in self.events.iter().rev().take(5).rev() {
            let _ = writeln!(
                out,
                "  event #{:<4} {} {}",
                event.seq, event.name, event.detail
            );
        }
        out
    }

    /// Writes the snapshot to `path`: Prometheus text for `.prom`/`.txt`
    /// extensions, the JSON document otherwise.
    ///
    /// # Errors
    ///
    /// Propagates the underlying file-system error.
    pub fn write_file(&self, path: &Path) -> io::Result<()> {
        let prometheus = matches!(
            path.extension().and_then(|e| e.to_str()),
            Some("prom" | "txt" | "prometheus")
        );
        let body = if prometheus {
            self.to_prometheus()
        } else {
            self.to_json()
        };
        std::fs::write(path, body)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;

    fn sample_registry() -> Registry {
        let reg = Registry::new();
        reg.counter("ops_total", "ops").add(7);
        reg.gauge_with("depth", "queue depth", &[("shard", "0")])
            .set(3);
        let h = reg.histogram("lat_ns", "latency");
        h.record(100);
        h.record(2000);
        reg.declare("empty_ns", MetricKind::Histogram, "declared only");
        reg
    }

    #[test]
    fn prometheus_text_has_types_buckets_and_values() {
        let text = sample_registry().snapshot().to_prometheus();
        assert!(text.contains("# TYPE ops_total counter"));
        assert!(text.contains("ops_total 7"));
        assert!(text.contains("depth{shard=\"0\"} 3"));
        assert!(text.contains("# TYPE lat_ns histogram"));
        assert!(text.contains("lat_ns_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("lat_ns_sum 2100"));
        assert!(text.contains("lat_ns_count 2"));
        // Declared-but-empty families still expose their TYPE header.
        assert!(text.contains("# TYPE empty_ns histogram"));
    }

    #[test]
    fn prometheus_buckets_are_cumulative() {
        let reg = Registry::new();
        let h = reg.histogram("h", "h");
        h.record(1);
        h.record(2);
        h.record(3);
        let text = reg.snapshot().to_prometheus();
        assert!(text.contains("h_bucket{le=\"1\"} 1"));
        assert!(text.contains("h_bucket{le=\"3\"} 3"));
        assert!(text.contains("h_bucket{le=\"+Inf\"} 3"));
    }

    #[test]
    fn json_is_schema_tagged_and_escaped() {
        let json = sample_registry().snapshot().to_json();
        assert!(json.starts_with("{\"schema\":\"linrv-obs/1\""));
        assert!(json.contains("\"name\":\"ops_total\""));
        assert!(json.contains("\"labels\":{\"shard\":\"0\"}"));
        assert!(json.contains("\"count\":2"));
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn report_shows_quantiles_and_skips_empty() {
        let report = sample_registry().snapshot().render_report();
        assert!(report.contains("ops_total"));
        assert!(report.contains("lat_ns"));
        assert!(
            !report.contains("empty_ns"),
            "empty families stay off-screen"
        );
    }

    #[test]
    fn format_ns_picks_units() {
        assert_eq!(format_ns(950), "950ns");
        assert_eq!(format_ns(1_500), "1.5µs");
        assert_eq!(format_ns(2_500_000), "2.5ms");
        assert_eq!(format_ns(3_000_000_000), "3.0s");
    }
}
