//! The three metric primitives: striped counters, gauges, and log-bucketed
//! histograms.
//!
//! All three are wait-free on the recording side: a sample is a handful of
//! `Relaxed` atomic read-modify-writes, no locks, no allocation, no
//! retry loops. That matches the wait-free discipline of the DRV hot path
//! this crate instruments — a monitor that blocks its own producers would
//! falsify the very property it measures.
//!
//! Reads (`get`, [`Histogram::snapshot_values`]) sum over the stripes and are
//! only eventually consistent with concurrent writers; that is the usual and
//! documented trade for contention-free recording.

use std::sync::atomic::{AtomicI64, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// Number of stripes per counter. Threads are assigned round-robin, so up to
/// `LANES` recording threads never touch the same cache line.
const LANES: usize = 8;

/// Number of histogram buckets: bucket `i` holds values whose bit length is
/// `i` (bucket 0 holds exactly the value zero), so 65 covers all of `u64`.
pub const BUCKETS: usize = 65;

/// One cache line worth of counter stripe, padded so neighbouring stripes
/// never false-share.
#[repr(align(64))]
struct Stripe(AtomicU64);

static NEXT_LANE: AtomicUsize = AtomicUsize::new(0);

/// This thread's stripe index, assigned round-robin on first use.
fn lane() -> usize {
    use std::cell::Cell;
    thread_local! {
        static LANE: Cell<usize> = const { Cell::new(usize::MAX) };
    }
    LANE.with(|cell| {
        let mut lane = cell.get();
        if lane == usize::MAX {
            lane = NEXT_LANE.fetch_add(1, Ordering::Relaxed) % LANES;
            cell.set(lane);
        }
        lane
    })
}

struct CounterCore {
    stripes: [Stripe; LANES],
}

/// A monotonically increasing counter, striped across `LANES` cache-padded
/// atomics. Cloning yields another handle to the same counter.
#[derive(Clone)]
pub struct Counter {
    core: Arc<CounterCore>,
}

impl Counter {
    /// A counter not attached to any registry (used by benches and tests).
    #[must_use]
    pub fn standalone() -> Self {
        Counter {
            core: Arc::new(CounterCore {
                stripes: std::array::from_fn(|_| Stripe(AtomicU64::new(0))),
            }),
        }
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`. One `Relaxed` `fetch_add` on this thread's stripe.
    #[inline]
    pub fn add(&self, n: u64) {
        self.core.stripes[lane()].0.fetch_add(n, Ordering::Relaxed);
    }

    /// The current total across all stripes.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.core
            .stripes
            .iter()
            .map(|s| s.0.load(Ordering::Relaxed))
            .sum()
    }
}

impl std::fmt::Debug for Counter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("Counter").field(&self.get()).finish()
    }
}

/// A signed instantaneous value (queue depth, watermark). A single atomic:
/// gauges are set far less often than counters are bumped.
#[derive(Clone)]
pub struct Gauge {
    core: Arc<AtomicI64>,
}

impl Gauge {
    /// A gauge not attached to any registry.
    #[must_use]
    pub fn standalone() -> Self {
        Gauge {
            core: Arc::new(AtomicI64::new(0)),
        }
    }

    /// Overwrites the value.
    #[inline]
    pub fn set(&self, value: i64) {
        self.core.store(value, Ordering::Relaxed);
    }

    /// Adds `delta` (may be negative).
    #[inline]
    pub fn add(&self, delta: i64) {
        self.core.fetch_add(delta, Ordering::Relaxed);
    }

    /// Raises the value to `value` if it is higher (high-watermark gauges).
    #[inline]
    pub fn set_max(&self, value: i64) {
        self.core.fetch_max(value, Ordering::Relaxed);
    }

    /// The current value.
    #[must_use]
    pub fn get(&self) -> i64 {
        self.core.load(Ordering::Relaxed)
    }
}

impl std::fmt::Debug for Gauge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("Gauge").field(&self.get()).finish()
    }
}

struct HistogramCore {
    buckets: [AtomicU64; BUCKETS],
    sum: AtomicU64,
    /// `u64::MAX` until the first sample.
    min: AtomicU64,
    max: AtomicU64,
}

/// A log-bucketed histogram: bucket `i` counts samples of bit length `i`
/// (powers of two), plus exact `sum`, `min` and `max`. Recording is four
/// `Relaxed` RMWs; quantiles are estimated from bucket midpoints and clamped
/// by the exact extrema, which for power-of-two buckets keeps p50/p99 within
/// a factor of ~1.5 of the true value — plenty for latency triage.
#[derive(Clone)]
pub struct Histogram {
    core: Arc<HistogramCore>,
}

/// Bucket index for `value`: its bit length.
#[inline]
fn bucket_of(value: u64) -> usize {
    (u64::BITS - value.leading_zeros()) as usize
}

/// Inclusive upper bound of bucket `i`.
#[must_use]
pub fn bucket_le(i: usize) -> u64 {
    match i {
        0 => 0,
        1..=63 => (1u64 << i) - 1,
        _ => u64::MAX,
    }
}

/// Midpoint representative of bucket `i`, used for quantile estimates.
fn bucket_mid(i: usize) -> u64 {
    if i == 0 {
        return 0;
    }
    let lo = 1u64 << (i - 1).min(63);
    let hi = bucket_le(i);
    lo + (hi - lo) / 2
}

impl Histogram {
    /// A histogram not attached to any registry.
    #[must_use]
    pub fn standalone() -> Self {
        Histogram {
            core: Arc::new(HistogramCore {
                buckets: std::array::from_fn(|_| AtomicU64::new(0)),
                sum: AtomicU64::new(0),
                min: AtomicU64::new(u64::MAX),
                max: AtomicU64::new(0),
            }),
        }
    }

    /// Records one sample: bucket increment, sum add, min/max fold — four
    /// `Relaxed` RMWs, never blocking.
    #[inline]
    pub fn record(&self, value: u64) {
        let core = &*self.core;
        core.buckets[bucket_of(value)].fetch_add(1, Ordering::Relaxed);
        core.sum.fetch_add(value, Ordering::Relaxed);
        core.min.fetch_min(value, Ordering::Relaxed);
        core.max.fetch_max(value, Ordering::Relaxed);
    }

    /// A point-in-time copy of the distribution. Under concurrent recording
    /// the fields may be mutually off by in-flight samples; each field is
    /// individually correct.
    #[must_use]
    pub fn snapshot_values(&self) -> HistogramSnapshot {
        let core = &*self.core;
        let buckets: [u64; BUCKETS] =
            std::array::from_fn(|i| core.buckets[i].load(Ordering::Relaxed));
        let count = buckets.iter().sum();
        let min = core.min.load(Ordering::Relaxed);
        HistogramSnapshot {
            buckets,
            count,
            sum: core.sum.load(Ordering::Relaxed),
            min: if min == u64::MAX { None } else { Some(min) },
            max: if count == 0 {
                None
            } else {
                Some(core.max.load(Ordering::Relaxed))
            },
        }
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let snap = self.snapshot_values();
        f.debug_struct("Histogram")
            .field("count", &snap.count)
            .field("sum", &snap.sum)
            .finish()
    }
}

/// A point-in-time copy of a [`Histogram`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket sample counts (bucket `i` = bit length `i`).
    pub buckets: [u64; BUCKETS],
    /// Total number of samples.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Smallest sample, if any.
    pub min: Option<u64>,
    /// Largest sample, if any.
    pub max: Option<u64>,
}

impl HistogramSnapshot {
    /// An empty snapshot (used for declared-but-unrecorded families).
    #[must_use]
    pub fn empty() -> Self {
        HistogramSnapshot {
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0,
            min: None,
            max: None,
        }
    }

    /// Mean sample value, or 0 when empty.
    #[must_use]
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// Estimated `q`-quantile (`0.0..=1.0`): the midpoint of the bucket the
    /// rank falls in, clamped by the exact min/max. Returns 0 when empty.
    #[must_use]
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        if rank == self.count {
            // The highest-ranked sample is known exactly.
            return self.max.unwrap_or(0);
        }
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                let mid = bucket_mid(i);
                let lo = self.min.unwrap_or(0);
                let hi = self.max.unwrap_or(u64::MAX);
                return mid.clamp(lo, hi);
            }
        }
        self.max.unwrap_or(0)
    }

    /// Folds `other` into `self` (used to merge labeled series for reports).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = match (self.min, other.min) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        self.max = match (self.max, other.max) {
            (Some(a), Some(b)) => Some(a.max(b)),
            (a, b) => a.or(b),
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_stripes_sum() {
        let c = Counter::standalone();
        c.add(3);
        c.inc();
        assert_eq!(c.get(), 4);
        let c2 = c.clone();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let c = c2.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.get(), 4004);
    }

    #[test]
    fn gauge_set_add_max() {
        let g = Gauge::standalone();
        g.set(5);
        g.add(-2);
        assert_eq!(g.get(), 3);
        g.set_max(10);
        g.set_max(7);
        assert_eq!(g.get(), 10);
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let h = Histogram::standalone();
        for v in [0u64, 1, 2, 3, 100, 1000, 1_000_000] {
            h.record(v);
        }
        let snap = h.snapshot_values();
        assert_eq!(snap.count, 7);
        assert_eq!(snap.sum, 1_001_106);
        assert_eq!(snap.min, Some(0));
        assert_eq!(snap.max, Some(1_000_000));
        // p50 falls in the bucket holding 2 and 3.
        let p50 = snap.quantile(0.5);
        assert!((2..=3).contains(&p50), "p50 = {p50}");
        // The top quantile is clamped to the exact max.
        assert_eq!(snap.quantile(1.0), 1_000_000);
        assert_eq!(snap.quantile(0.0), 0);
    }

    #[test]
    fn histogram_extreme_values_stay_in_bounds() {
        let h = Histogram::standalone();
        h.record(u64::MAX);
        h.record(1u64 << 63);
        let snap = h.snapshot_values();
        assert_eq!(snap.count, 2);
        assert_eq!(snap.max, Some(u64::MAX));
        assert!(snap.quantile(0.99) >= 1u64 << 63);
    }

    #[test]
    fn bucket_bounds_are_monotone() {
        let mut prev = 0;
        for i in 0..BUCKETS {
            let le = bucket_le(i);
            assert!(i == 0 || le > prev, "bucket {i}");
            prev = le;
        }
        assert_eq!(bucket_le(BUCKETS - 1), u64::MAX);
    }

    #[test]
    fn merge_folds_counts_and_extrema() {
        let a = Histogram::standalone();
        let b = Histogram::standalone();
        a.record(10);
        b.record(1000);
        let mut snap = a.snapshot_values();
        snap.merge(&b.snapshot_values());
        assert_eq!(snap.count, 2);
        assert_eq!(snap.min, Some(10));
        assert_eq!(snap.max, Some(1000));
    }
}
