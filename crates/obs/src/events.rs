//! A small bounded ring of recent trace events.
//!
//! Events are the qualitative side of the facade: "violation latched on
//! object 7", "GC reclaimed 1200 events". They are rare by construction, so
//! the ring is a plain `Mutex` — the wait-free discipline applies to the
//! per-operation metrics, not to once-per-incident notes. When recording is
//! disabled ([`crate::enabled`] is false) an event costs one load and a
//! branch; the detail closure is never run.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Capacity of the ring; older events are dropped first.
pub const EVENT_CAPACITY: usize = 256;

/// One recorded trace event.
#[derive(Debug, Clone)]
pub struct Event {
    /// Process-wide sequence number (total order over all events).
    pub seq: u64,
    /// Static event name, e.g. `pool.violation`.
    pub name: &'static str,
    /// Free-form detail, rendered lazily only when recording is enabled.
    pub detail: String,
}

static SEQ: AtomicU64 = AtomicU64::new(0);
static RING: Mutex<VecDeque<Event>> = Mutex::new(VecDeque::new());

fn ring() -> std::sync::MutexGuard<'static, VecDeque<Event>> {
    RING.lock().unwrap_or_else(|e| e.into_inner())
}

/// Records an event into the ring when recording is enabled. `detail` is
/// only evaluated (and only allocates) when it will actually be stored.
pub fn event(name: &'static str, detail: impl FnOnce() -> String) {
    if !crate::enabled() {
        return;
    }
    let seq = SEQ.fetch_add(1, Ordering::Relaxed);
    let detail = detail();
    let mut ring = ring();
    if ring.len() == EVENT_CAPACITY {
        ring.pop_front();
    }
    ring.push_back(Event { seq, name, detail });
}

/// The current ring contents, oldest first.
#[must_use]
pub fn recent_events() -> Vec<Event> {
    ring().iter().cloned().collect()
}

/// Empties the ring (tests and long-lived dashboards).
pub fn clear_events() {
    ring().clear();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recording_skips_the_detail_closure() {
        crate::set_enabled(false);
        clear_events();
        event("test.skip", || {
            unreachable!("detail must not run when disabled")
        });
        assert!(recent_events().is_empty());
    }

    #[test]
    fn ring_keeps_the_newest_events() {
        if !crate::set_enabled(true) {
            return; // compiled out
        }
        clear_events();
        for i in 0..(EVENT_CAPACITY + 10) {
            event("test.fill", || format!("{i}"));
        }
        let events = recent_events();
        assert_eq!(events.len(), EVENT_CAPACITY);
        assert_eq!(
            events.last().unwrap().detail,
            format!("{}", EVENT_CAPACITY + 9)
        );
        crate::set_enabled(false);
        clear_events();
    }
}
