//! Metric registry: named, labeled families of counters/gauges/histograms,
//! and the point-in-time [`MetricsSnapshot`] read off them.
//!
//! Registration is the cold path (a `Mutex` over a `BTreeMap`); the handles
//! it returns are `Arc`-backed clones, so the hot recording path never goes
//! near the registry again. Registering the same `(name, labels)` pair twice
//! returns a handle to the same underlying metric, which makes lazy
//! `OnceLock`-style call-site statics idempotent.

use crate::events::{recent_events, Event};
use crate::metric::{Counter, Gauge, Histogram, HistogramSnapshot};
use std::collections::BTreeMap;
use std::sync::{Mutex, MutexGuard, OnceLock};

/// What a metric family measures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonically increasing count.
    Counter,
    /// Instantaneous signed value.
    Gauge,
    /// Log-bucketed sample distribution.
    Histogram,
}

impl MetricKind {
    /// The Prometheus type name.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

#[derive(Clone)]
enum AnyMetric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

struct Family {
    kind: MetricKind,
    help: &'static str,
    /// Keyed by the rendered label string for deterministic export order.
    series: BTreeMap<String, (Vec<(String, String)>, AnyMetric)>,
}

/// A collection of metric families. Most code uses [`Registry::global`];
/// benches and tests can build private instances.
#[derive(Default)]
pub struct Registry {
    families: Mutex<BTreeMap<String, Family>>,
}

fn label_key(labels: &[(String, String)]) -> String {
    let mut out = String::new();
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(k);
        out.push_str("=\"");
        out.push_str(v);
        out.push('"');
    }
    out
}

fn own_labels(labels: &[(&str, &str)]) -> Vec<(String, String)> {
    let mut owned: Vec<(String, String)> = labels
        .iter()
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect();
    owned.sort();
    owned
}

impl Registry {
    /// A fresh, empty registry.
    #[must_use]
    pub fn new() -> Self {
        Registry::default()
    }

    /// The process-wide registry every built-in instrumentation site uses.
    #[must_use]
    pub fn global() -> &'static Registry {
        static GLOBAL: OnceLock<Registry> = OnceLock::new();
        GLOBAL.get_or_init(Registry::new)
    }

    fn lock(&self) -> MutexGuard<'_, BTreeMap<String, Family>> {
        self.families.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn register(
        &self,
        name: &str,
        kind: MetricKind,
        help: &'static str,
        labels: &[(&str, &str)],
        make: impl FnOnce() -> AnyMetric,
    ) -> AnyMetric {
        let mut families = self.lock();
        let family = families.entry(name.to_string()).or_insert_with(|| Family {
            kind,
            help,
            series: BTreeMap::new(),
        });
        assert!(
            family.kind == kind,
            "metric {name:?} registered as {} but requested as {}",
            family.kind.as_str(),
            kind.as_str()
        );
        let owned = own_labels(labels);
        let key = label_key(&owned);
        let (_, metric) = family.series.entry(key).or_insert_with(|| (owned, make()));
        metric.clone()
    }

    /// Declares a family without creating any series, so exports always show
    /// it (with zero series) even when nothing recorded into it yet.
    pub fn declare(&self, name: &str, kind: MetricKind, help: &'static str) {
        let mut families = self.lock();
        let family = families.entry(name.to_string()).or_insert_with(|| Family {
            kind,
            help,
            series: BTreeMap::new(),
        });
        assert!(
            family.kind == kind,
            "metric {name:?} declared as {} but exists as {}",
            kind.as_str(),
            family.kind.as_str()
        );
    }

    /// An unlabeled counter named `name`, created on first use.
    pub fn counter(&self, name: &str, help: &'static str) -> Counter {
        self.counter_with(name, help, &[])
    }

    /// A labeled counter series in the family `name`.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered with a different kind.
    pub fn counter_with(&self, name: &str, help: &'static str, labels: &[(&str, &str)]) -> Counter {
        match self.register(name, MetricKind::Counter, help, labels, || {
            AnyMetric::Counter(Counter::standalone())
        }) {
            AnyMetric::Counter(c) => c,
            _ => unreachable!("kind checked in register"),
        }
    }

    /// An unlabeled gauge named `name`, created on first use.
    pub fn gauge(&self, name: &str, help: &'static str) -> Gauge {
        self.gauge_with(name, help, &[])
    }

    /// A labeled gauge series in the family `name`.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered with a different kind.
    pub fn gauge_with(&self, name: &str, help: &'static str, labels: &[(&str, &str)]) -> Gauge {
        match self.register(name, MetricKind::Gauge, help, labels, || {
            AnyMetric::Gauge(Gauge::standalone())
        }) {
            AnyMetric::Gauge(g) => g,
            _ => unreachable!("kind checked in register"),
        }
    }

    /// An unlabeled histogram named `name`, created on first use.
    pub fn histogram(&self, name: &str, help: &'static str) -> Histogram {
        self.histogram_with(name, help, &[])
    }

    /// A labeled histogram series in the family `name`.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered with a different kind.
    pub fn histogram_with(
        &self,
        name: &str,
        help: &'static str,
        labels: &[(&str, &str)],
    ) -> Histogram {
        match self.register(name, MetricKind::Histogram, help, labels, || {
            AnyMetric::Histogram(Histogram::standalone())
        }) {
            AnyMetric::Histogram(h) => h,
            _ => unreachable!("kind checked in register"),
        }
    }

    /// A point-in-time copy of every family, series and the recent event
    /// ring. Deterministically ordered (by name, then label string).
    #[must_use]
    pub fn snapshot(&self) -> MetricsSnapshot {
        let families = self.lock();
        let mut out = Vec::with_capacity(families.len());
        for (name, family) in families.iter() {
            let series = family
                .series
                .values()
                .map(|(labels, metric)| SeriesSnapshot {
                    labels: labels.clone(),
                    value: match metric {
                        AnyMetric::Counter(c) => SeriesValue::Counter(c.get()),
                        AnyMetric::Gauge(g) => SeriesValue::Gauge(g.get()),
                        AnyMetric::Histogram(h) => {
                            SeriesValue::Histogram(Box::new(h.snapshot_values()))
                        }
                    },
                })
                .collect();
            out.push(FamilySnapshot {
                name: name.clone(),
                kind: family.kind,
                help: family.help.to_string(),
                series,
            });
        }
        MetricsSnapshot {
            enabled: crate::enabled(),
            families: out,
            events: recent_events(),
        }
    }
}

/// A point-in-time copy of a [`Registry`], ready for export or inspection.
#[derive(Debug, Clone)]
pub struct MetricsSnapshot {
    /// Whether recording was enabled when the snapshot was taken.
    pub enabled: bool,
    /// Every registered family, sorted by name.
    pub families: Vec<FamilySnapshot>,
    /// The recent trace-event ring, oldest first.
    pub events: Vec<Event>,
}

/// One metric family (a name plus all its labeled series) in a snapshot.
#[derive(Debug, Clone)]
pub struct FamilySnapshot {
    /// Family name, e.g. `linrv_drv_announce_ns`.
    pub name: String,
    /// Counter, gauge or histogram.
    pub kind: MetricKind,
    /// Human-readable help string.
    pub help: String,
    /// All series, sorted by rendered label string.
    pub series: Vec<SeriesSnapshot>,
}

/// One labeled series within a family.
#[derive(Debug, Clone)]
pub struct SeriesSnapshot {
    /// Sorted `(key, value)` label pairs; empty for unlabeled series.
    pub labels: Vec<(String, String)>,
    /// The series' value at snapshot time.
    pub value: SeriesValue,
}

/// The value of one series.
#[derive(Debug, Clone)]
pub enum SeriesValue {
    /// Counter total.
    Counter(u64),
    /// Gauge value.
    Gauge(i64),
    /// Histogram distribution (boxed: a snapshot is ~0.5 KiB of buckets).
    Histogram(Box<HistogramSnapshot>),
}

impl MetricsSnapshot {
    /// The family named `name`, if present.
    #[must_use]
    pub fn family(&self, name: &str) -> Option<&FamilySnapshot> {
        self.families.iter().find(|f| f.name == name)
    }

    /// Sum of all counter series in the family `name`; `None` when the
    /// family is absent or not a counter family.
    #[must_use]
    pub fn counter(&self, name: &str) -> Option<u64> {
        let family = self.family(name)?;
        if family.kind != MetricKind::Counter {
            return None;
        }
        Some(
            family
                .series
                .iter()
                .map(|s| match s.value {
                    SeriesValue::Counter(v) => v,
                    _ => 0,
                })
                .sum(),
        )
    }

    /// Sum of all gauge series in the family `name`.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Option<i64> {
        let family = self.family(name)?;
        if family.kind != MetricKind::Gauge {
            return None;
        }
        Some(
            family
                .series
                .iter()
                .map(|s| match s.value {
                    SeriesValue::Gauge(v) => v,
                    _ => 0,
                })
                .sum(),
        )
    }

    /// All histogram series of the family `name` merged into one
    /// distribution; `None` when absent or not a histogram family. A
    /// declared-but-empty family yields an empty distribution.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Option<HistogramSnapshot> {
        let family = self.family(name)?;
        if family.kind != MetricKind::Histogram {
            return None;
        }
        let mut merged = HistogramSnapshot::empty();
        for series in &family.series {
            if let SeriesValue::Histogram(h) = &series.value {
                merged.merge(h);
            }
        }
        Some(merged)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_name_and_labels_share_the_metric() {
        let reg = Registry::new();
        let a = reg.counter("x_total", "x");
        let b = reg.counter("x_total", "x");
        a.inc();
        b.inc();
        assert_eq!(a.get(), 2);
        assert_eq!(reg.snapshot().counter("x_total"), Some(2));
    }

    #[test]
    fn labeled_series_are_distinct_and_sum_in_snapshots() {
        let reg = Registry::new();
        reg.counter_with("s_total", "s", &[("shard", "0")]).add(3);
        reg.counter_with("s_total", "s", &[("shard", "1")]).add(4);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("s_total"), Some(7));
        assert_eq!(snap.family("s_total").unwrap().series.len(), 2);
    }

    #[test]
    fn declared_families_appear_empty() {
        let reg = Registry::new();
        reg.declare("h_ns", MetricKind::Histogram, "h");
        let snap = reg.snapshot();
        assert_eq!(snap.family("h_ns").unwrap().series.len(), 0);
        assert_eq!(snap.histogram("h_ns").unwrap().count, 0);
    }

    #[test]
    #[should_panic(expected = "registered as counter")]
    fn kind_mismatch_panics() {
        let reg = Registry::new();
        reg.counter("m", "m");
        let _ = reg.gauge("m", "m");
    }

    #[test]
    fn gauges_and_histograms_snapshot() {
        let reg = Registry::new();
        reg.gauge_with("depth", "d", &[("shard", "0")]).set(5);
        reg.histogram("lat_ns", "l").record(100);
        let snap = reg.snapshot();
        assert_eq!(snap.gauge("depth"), Some(5));
        assert_eq!(snap.histogram("lat_ns").unwrap().count, 1);
        assert!(snap.counter("depth").is_none(), "kind-checked accessors");
    }
}
