//! `linrv-obs` — a wait-free metrics core and tracing facade for the linrv
//! monitor stack.
//!
//! The paper's claim is that linearizability verification can run *online*,
//! next to production traffic. That only holds if the monitor itself is
//! observable without perturbing the wait-free hot path, so this crate is
//! built around one discipline:
//!
//! * **recording never blocks** — counters are striped across cache-padded
//!   atomics, histograms are log-bucketed arrays; a sample is a handful of
//!   `Relaxed` RMWs (see [`Counter`], [`Histogram`]);
//! * **disabled means free** — timing instrumentation is guarded by a
//!   process-wide [`enabled`] flag (one relaxed load and a predictable
//!   branch when off), and the `compile-off` cargo feature folds that flag
//!   to a constant `false` so guarded sites vanish entirely;
//! * **reads are eventually consistent** — snapshots sum over stripes while
//!   writers keep writing; each value is individually correct, cross-metric
//!   exactness is only guaranteed at quiescence.
//!
//! # Policy: what is gated, what is always on
//!
//! Counters and gauges that back first-class stats APIs (the pool's
//! [`stats()`] family) are recorded unconditionally — they cost the same
//! relaxed adds as the ad-hoc atomics they replaced. Everything that needs a
//! *clock* (latency histograms, spans) or allocates (trace events) is gated
//! on [`enabled`], which defaults to **off**: a production monitor pays for
//! observability only after someone asks for it (`--stats`, dashboards).
//!
//! # Example
//!
//! ```
//! use linrv_obs::{Registry, Span};
//!
//! let registry = Registry::new(); // or Registry::global()
//! let ops = registry.counter("myapp_ops_total", "operations applied");
//! let latency = registry.histogram("myapp_op_ns", "per-op latency");
//!
//! let armed = linrv_obs::set_enabled(true); // arm the timing instrumentation
//! for _ in 0..100 {
//!     let span = Span::start(&latency); // no-op (and clock-free) when disabled
//!     ops.inc();
//!     drop(span); // records the elapsed nanoseconds
//! }
//! linrv_obs::set_enabled(false);
//!
//! let snapshot = registry.snapshot();
//! assert_eq!(snapshot.counter("myapp_ops_total"), Some(100));
//! let timed = snapshot.histogram("myapp_op_ns").unwrap().count;
//! assert_eq!(timed, if armed { 100 } else { 0 }); // compile-off builds stay dark
//! print!("{}", snapshot.render_report()); // or .to_prometheus() / .to_json()
//! ```
//!
//! [`stats()`]: https://docs.rs/linrv-pool

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod events;
mod export;
mod metric;
mod registry;

pub use events::{clear_events, event, recent_events, Event, EVENT_CAPACITY};
pub use export::{format_ns, JSON_SCHEMA};
pub use metric::{bucket_le, Counter, Gauge, Histogram, HistogramSnapshot, BUCKETS};
pub use registry::{
    FamilySnapshot, MetricKind, MetricsSnapshot, Registry, SeriesSnapshot, SeriesValue,
};

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Instant;

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Whether timing/tracing instrumentation records right now. One `Relaxed`
/// load; a constant `false` under the `compile-off` feature, so guarded
/// call sites fold away entirely.
#[inline]
#[must_use]
pub fn enabled() -> bool {
    if cfg!(feature = "compile-off") {
        return false;
    }
    ENABLED.load(Ordering::Relaxed)
}

/// Turns timing/tracing instrumentation on or off process-wide and returns
/// the state now in effect (always `false` under `compile-off`).
pub fn set_enabled(on: bool) -> bool {
    if cfg!(feature = "compile-off") {
        return false;
    }
    ENABLED.store(on, Ordering::Relaxed);
    on
}

/// An RAII timing span: started against a [`Histogram`], records the elapsed
/// nanoseconds into it on drop (or [`Span::stop`]). When recording is
/// disabled the constructor takes no clock reading and the span is inert.
#[must_use = "a span records on drop; binding it to _ discards the timing"]
pub struct Span {
    live: Option<(Histogram, Instant)>,
}

impl Span {
    /// Starts a span recording into `target`, or an inert span when
    /// recording is disabled.
    pub fn start(target: &Histogram) -> Span {
        if enabled() {
            Span {
                live: Some((target.clone(), Instant::now())),
            }
        } else {
            Span { live: None }
        }
    }

    /// Stops the span early, returning the recorded nanoseconds (`None` for
    /// inert spans).
    pub fn stop(mut self) -> Option<u64> {
        self.finish()
    }

    fn finish(&mut self) -> Option<u64> {
        let (hist, start) = self.live.take()?;
        let ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        hist.record(ns);
        Some(ns)
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let _ = self.finish();
    }
}

/// Times `f` into `target` (via [`Span`]) and returns its result.
pub fn time<R>(target: &Histogram, f: impl FnOnce() -> R) -> R {
    let _span = Span::start(target);
    f()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_spans_are_inert() {
        set_enabled(false);
        let h = Histogram::standalone();
        let span = Span::start(&h);
        assert_eq!(span.stop(), None);
        assert_eq!(h.snapshot_values().count, 0);
    }

    #[test]
    fn enabled_spans_record_on_drop_and_stop() {
        if !set_enabled(true) {
            return; // compile-off build
        }
        let h = Histogram::standalone();
        {
            let _span = Span::start(&h);
        }
        let ns = Span::start(&h).stop();
        assert!(ns.is_some());
        assert_eq!(h.snapshot_values().count, 2);
        let out = time(&h, || 41 + 1);
        assert_eq!(out, 42);
        assert_eq!(h.snapshot_values().count, 3);
        set_enabled(false);
    }

    #[test]
    fn counters_record_regardless_of_the_switch() {
        set_enabled(false);
        let c = Counter::standalone();
        c.inc();
        assert_eq!(c.get(), 1);
    }
}
