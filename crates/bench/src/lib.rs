//! Benchmark harness crate for the `linrv` workspace.
//!
//! Each bench target under `benches/` regenerates one experiment of EXPERIMENTS.md.
//! The library itself only exposes tiny helpers shared by the benches.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Standard process counts swept by the scaling benches.
pub const PROCESS_SWEEP: [usize; 4] = [1, 2, 4, 8];

#[cfg(test)]
mod tests {
    #[test]
    fn sweep_is_increasing() {
        assert!(super::PROCESS_SWEEP.windows(2).all(|w| w[0] < w[1]));
    }
}
