//! Experiment E8 (Lemma 7.2): the step complexity of `A*` is the step complexity of
//! `A` plus `O(n)`. We measure per-operation latency of a raw queue vs. its DRV
//! wrapper for increasing numbers of processes `n`: the gap should grow roughly
//! linearly in `n` (the announce `Write` + `Snapshot` of Figure 7).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use linrv_core::drv::Drv;
use linrv_history::ProcessId;
use linrv_runtime::impls::MsQueue;
use linrv_runtime::ConcurrentObject;
use linrv_spec::ops::queue;
use std::time::Duration;

fn quick() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(100))
        .measurement_time(Duration::from_millis(400))
}

fn bench_drv_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("E8_drv_overhead");
    let p0 = ProcessId::new(0);

    group.bench_function("raw_queue_enq_deq", |b| {
        let queue = MsQueue::new();
        let mut i = 0i64;
        b.iter(|| {
            i += 1;
            queue.apply(p0, &queue::enqueue(i));
            queue.apply(p0, &queue::dequeue())
        });
    });

    for n in linrv_bench::PROCESS_SWEEP {
        group.bench_with_input(BenchmarkId::new("drv_queue_enq_deq", n), &n, |b, &n| {
            let drv = Drv::new(MsQueue::new(), n);
            let mut i = 0i64;
            b.iter(|| {
                i += 1;
                drv.apply_drv(p0, &queue::enqueue(i));
                drv.apply_drv(p0, &queue::dequeue())
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench_drv_overhead
}
criterion_main!(benches);
