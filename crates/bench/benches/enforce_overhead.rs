//! Experiment E11 (Theorem 8.2): end-to-end overhead of self-enforcement — per-
//! operation latency of a raw implementation vs. its self-enforced counterpart
//! `V_{O,A}`, per object kind. The absolute gap is dominated by the membership test on
//! the accumulated history, which is why the paper's follow-up work and the decoupled
//! variant (experiment E12) move verification off the critical path.

use criterion::{criterion_group, criterion_main, Criterion};
use linrv_check::LinSpec;
use linrv_core::enforce::SelfEnforced;
use linrv_history::ProcessId;
use linrv_runtime::impls::{AtomicCounter, MsQueue, TreiberStack};
use linrv_runtime::ConcurrentObject;
use linrv_spec::ops::{counter, queue, stack};
use linrv_spec::{CounterSpec, QueueSpec, StackSpec};
use std::time::Duration;

fn quick() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(100))
        .measurement_time(Duration::from_millis(400))
}

fn bench_queue(c: &mut Criterion) {
    let mut group = c.benchmark_group("E11_enforce_overhead_queue");
    let p0 = ProcessId::new(0);
    group.bench_function("raw", |b| {
        let q = MsQueue::new();
        let mut i = 0i64;
        b.iter(|| {
            i += 1;
            q.apply(p0, &queue::enqueue(i));
            q.apply(p0, &queue::dequeue())
        });
    });
    group.bench_function("self_enforced", |b| {
        b.iter_batched(
            || SelfEnforced::new(MsQueue::new(), LinSpec::new(QueueSpec::new()), 2),
            |enforced| {
                for i in 0..8i64 {
                    enforced.apply_verified(p0, &queue::enqueue(i));
                    enforced.apply_verified(p0, &queue::dequeue());
                }
            },
            criterion::BatchSize::SmallInput,
        );
    });
    group.finish();
}

fn bench_stack(c: &mut Criterion) {
    let mut group = c.benchmark_group("E11_enforce_overhead_stack");
    let p0 = ProcessId::new(0);
    group.bench_function("raw", |b| {
        let s = TreiberStack::new();
        let mut i = 0i64;
        b.iter(|| {
            i += 1;
            s.apply(p0, &stack::push(i));
            s.apply(p0, &stack::pop())
        });
    });
    group.bench_function("self_enforced", |b| {
        b.iter_batched(
            || SelfEnforced::new(TreiberStack::new(), LinSpec::new(StackSpec::new()), 2),
            |enforced| {
                for i in 0..8i64 {
                    enforced.apply_verified(p0, &stack::push(i));
                    enforced.apply_verified(p0, &stack::pop());
                }
            },
            criterion::BatchSize::SmallInput,
        );
    });
    group.finish();
}

fn bench_counter(c: &mut Criterion) {
    let mut group = c.benchmark_group("E11_enforce_overhead_counter");
    let p0 = ProcessId::new(0);
    group.bench_function("raw", |b| {
        let cnt = AtomicCounter::new();
        b.iter(|| cnt.apply(p0, &counter::inc()));
    });
    group.bench_function("self_enforced", |b| {
        b.iter_batched(
            || SelfEnforced::new(AtomicCounter::new(), LinSpec::new(CounterSpec::new()), 2),
            |enforced| {
                for _ in 0..8 {
                    enforced.apply_verified(p0, &counter::inc());
                }
            },
            criterion::BatchSize::SmallInput,
        );
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench_queue, bench_stack, bench_counter
}
criterion_main!(benches);
