//! Observability satellite: recording must be paid for only when switched on.
//!
//! Two claims are measured. First, the primitives themselves are cheap: a
//! striped counter increment and a histogram record are a handful of relaxed
//! RMWs, and the `enabled()` kill switch is a single relaxed load. Second,
//! and the one the tier-1 gate in `tests-integration/tests/obs.rs` enforces:
//! the **default-off** configuration leaves the instrumented session hot path
//! within noise of itself — the identical counter workload is timed with
//! recording off and on, so the difference between the two measurements is
//! exactly the per-operation recording cost (`linrv_session_op_ns`,
//! `linrv_drv_*` timings and the verdict counters).

use criterion::{criterion_group, criterion_main, Criterion};
use linrv::prelude::*;
use linrv::runtime::impls::AtomicCounter;
use std::time::Duration;

fn quick() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(100))
        .measurement_time(Duration::from_millis(400))
}

fn bench_obs_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("E17_obs_overhead_session");

    for on in [false, true] {
        let label = if on { "metrics_on" } else { "metrics_off" };
        group.bench_function(label, |b| {
            let effective = linrv_obs::set_enabled(on);
            assert_eq!(
                effective, on,
                "bench requires the default build (no compile-off feature)"
            );
            b.iter_batched(
                || {
                    let monitor = Monitor::builder(CounterSpec::new())
                        .processes(1)
                        .build(AtomicCounter::new());
                    let session = monitor.register().expect("fresh monitor has a free slot");
                    (monitor, session)
                },
                |(_monitor, session)| {
                    for _ in 0..8 {
                        session.inc().expect("a correct counter is never rejected");
                    }
                },
                criterion::BatchSize::SmallInput,
            );
            linrv_obs::set_enabled(false);
        });
    }
    group.finish();

    let mut group = c.benchmark_group("E17_obs_primitives");
    let counter = linrv_obs::Counter::standalone();
    group.bench_function("counter_inc", |b| b.iter(|| counter.inc()));
    let histogram = linrv_obs::Histogram::standalone();
    let mut sample = 0u64;
    group.bench_function("histogram_record", |b| {
        b.iter(|| {
            sample = sample.wrapping_add(0x9E37_79B9);
            histogram.record(sample & 0xFFFF);
        });
    });
    group.bench_function("enabled_check", |b| b.iter(linrv_obs::enabled));
    group.finish();
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench_obs_overhead
}
criterion_main!(benches);
