//! Trace codec throughput: encode/decode a 100k-operation queue history in
//! both on-disk formats (JSONL and binary), reported as wall time per pass —
//! divide 100k by the mean to get operations per second.
//!
//! This is the hot loop of `linrv record` (encode on the tap) and
//! `linrv check` (decode on the stream), so regressions here directly slow the
//! record/replay pipeline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use linrv_history::History;
use linrv_runtime::{record_scheduled, RecorderOptions, Workload, WorkloadKind};
use linrv_spec::ObjectKind;
use linrv_trace::{read_history, write_history, TraceFormat, TraceHeader};
use std::time::Duration;

fn quick() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(100))
        .measurement_time(Duration::from_millis(400))
}

/// Operations in the benchmark history (events are twice this).
const OPS: usize = 100_000;

/// A deterministic 100k-operation queue history: 4 processes, seeded scheduled
/// interleaving against the lock-based specification object.
fn queue_history() -> History {
    let object = linrv_runtime::impls::spec_object(ObjectKind::Queue);
    record_scheduled(
        &*object,
        Workload::new(WorkloadKind::Queue, 42),
        RecorderOptions {
            processes: 4,
            ops_per_process: OPS / 4,
        },
        42,
    )
    .history
}

fn encoded(history: &History, format: TraceFormat) -> Vec<u8> {
    let header = TraceHeader::new(ObjectKind::Queue).with_seed(42);
    let mut bytes = Vec::new();
    write_history(&mut bytes, format, &header, history).expect("in-memory write");
    bytes
}

fn bench_codec(c: &mut Criterion) {
    let history = queue_history();
    assert_eq!(history.len(), 2 * OPS);
    let mut group = c.benchmark_group("trace_codec");
    for format in [TraceFormat::Jsonl, TraceFormat::Binary] {
        let bytes = encoded(&history, format);
        println!(
            "trace_codec: {format} encoding of {OPS} ops = {} bytes ({:.1} B/op)",
            bytes.len(),
            bytes.len() as f64 / OPS as f64
        );
        group.bench_with_input(
            BenchmarkId::new("encode_100k_queue_ops", format),
            &history,
            |b, history| b.iter(|| encoded(history, format)),
        );
        group.bench_with_input(
            BenchmarkId::new("decode_100k_queue_ops", format),
            &bytes,
            |b, bytes| {
                b.iter(|| {
                    let (_, decoded) = read_history(bytes.as_slice()).expect("well-formed");
                    assert_eq!(decoded.len(), 2 * OPS);
                    decoded
                })
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench_codec
}
criterion_main!(benches);
