//! Experiment E12 (Section 9.2): producer-side latency of the coupled self-enforced
//! implementation (Figure 11, the membership test sits on the critical path) vs. the
//! decoupled variant (Figure 12, producers only publish the tuple and return).

use criterion::{criterion_group, criterion_main, Criterion};
use linrv_check::LinSpec;
use linrv_core::decoupled::decoupled;
use linrv_core::enforce::SelfEnforced;
use linrv_history::ProcessId;
use linrv_runtime::impls::MsQueue;
use linrv_runtime::ConcurrentObject;
use linrv_spec::ops::queue;
use linrv_spec::QueueSpec;
use std::time::Duration;

fn quick() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(100))
        .measurement_time(Duration::from_millis(400))
}

fn bench_producer_latency(c: &mut Criterion) {
    let mut group = c.benchmark_group("E12_producer_latency");
    let p0 = ProcessId::new(0);
    let ops_per_batch = 8i64;

    group.bench_function("coupled_self_enforced", |b| {
        b.iter_batched(
            || SelfEnforced::new(MsQueue::new(), LinSpec::new(QueueSpec::new()), 2),
            |enforced| {
                for i in 0..ops_per_batch {
                    enforced.apply_verified(p0, &queue::enqueue(i));
                    enforced.apply_verified(p0, &queue::dequeue());
                }
            },
            criterion::BatchSize::SmallInput,
        );
    });

    group.bench_function("decoupled_producer", |b| {
        b.iter_batched(
            || decoupled(MsQueue::new(), LinSpec::new(QueueSpec::new()), 2).0,
            |producer| {
                for i in 0..ops_per_batch {
                    producer.apply(p0, &queue::enqueue(i));
                    producer.apply(p0, &queue::dequeue());
                }
            },
            criterion::BatchSize::SmallInput,
        );
    });

    group.bench_function("decoupled_verifier_pass", |b| {
        // Cost of one background verification pass over a published run of 16 ops.
        let (producer, verifier) = decoupled(MsQueue::new(), LinSpec::new(QueueSpec::new()), 2);
        for i in 0..ops_per_batch {
            producer.apply(p0, &queue::enqueue(i));
            producer.apply(p0, &queue::dequeue());
        }
        b.iter(|| verifier.check_once());
    });

    group.finish();
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench_producer_latency
}
criterion_main!(benches);
