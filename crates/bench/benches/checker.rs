//! Experiment E16 (Section 3: the local `P_O` test): cost of deciding linearizability
//! of a finite history as a function of history length; effect of Lowe-style
//! memoisation; and the partitioned (product-object) fast path for sets.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use linrv_check::{CheckerConfig, GenLinObject, LinSpec};
use linrv_history::{History, HistoryBuilder, OpValue, ProcessId};
use linrv_spec::ops::{queue, set};
use linrv_spec::{QueueSpec, SequentialSpec, SetSpec};
use std::time::Duration;

fn quick() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(100))
        .measurement_time(Duration::from_millis(400))
}

/// A linearizable queue history of `len` operations with two interleaved processes.
fn queue_history(len: usize) -> History {
    let spec = QueueSpec::new();
    let mut state = spec.initial_state();
    let mut b = HistoryBuilder::new();
    for i in 0..len {
        let op = if i % 3 == 0 {
            queue::dequeue()
        } else {
            queue::enqueue(i as i64)
        };
        let (next, response) = spec.step_deterministic(&state, &op).unwrap();
        state = next;
        b.complete(ProcessId::new((i % 2) as u32), op, response);
    }
    b.build()
}

/// A linearizable set history touching `keys` distinct keys.
fn set_history(len: usize, keys: i64) -> History {
    let spec = SetSpec::new();
    let mut state = spec.initial_state();
    let mut b = HistoryBuilder::new();
    for i in 0..len {
        let key = (i as i64) % keys;
        let op = match i % 3 {
            0 => set::add(key),
            1 => set::contains(key),
            _ => set::remove(key),
        };
        let (next, response) = spec.step_deterministic(&state, &op).unwrap();
        state = next;
        b.complete(ProcessId::new((i % 3) as u32), op, response);
    }
    b.build()
}

fn bench_history_length(c: &mut Criterion) {
    let mut group = c.benchmark_group("E16_checker_history_length");
    for len in [8usize, 16, 32, 64] {
        let history = queue_history(len);
        group.bench_with_input(BenchmarkId::new("wgl_memoized", len), &history, |b, h| {
            let checker = LinSpec::new(QueueSpec::new());
            b.iter(|| checker.contains(h));
        });
        group.bench_with_input(BenchmarkId::new("wgl_unmemoized", len), &history, |b, h| {
            let checker = LinSpec::with_config(
                QueueSpec::new(),
                CheckerConfig {
                    memoize: false,
                    max_explored_states: None,
                },
            );
            b.iter(|| checker.contains(h));
        });
    }
    group.finish();
}

fn bench_partitioning(c: &mut Criterion) {
    let mut group = c.benchmark_group("E16_checker_partitioning");
    for len in [16usize, 48] {
        let history = set_history(len, 6);
        group.bench_with_input(BenchmarkId::new("generic_set", len), &history, |b, h| {
            let checker = LinSpec::new(SetSpec::new());
            b.iter(|| checker.contains(h));
        });
        group.bench_with_input(
            BenchmarkId::new("partitioned_set", len),
            &history,
            |b, h| {
                let checker = linrv_check::partitioned::partitioned_set();
                b.iter(|| checker.contains(h));
            },
        );
    }
    group.finish();
}

fn bench_figure_histories(c: &mut Criterion) {
    // Deciding the small histories of the paper's figures costs microseconds — the
    // overhead the self-enforced wrapper pays per operation on short prefixes.
    let mut group = c.benchmark_group("E16_checker_figure_histories");
    let mut b = HistoryBuilder::new();
    let push = b.invoke(ProcessId::new(0), linrv_spec::ops::stack::push(1));
    let pop = b.invoke(ProcessId::new(1), linrv_spec::ops::stack::pop());
    b.respond(pop, OpValue::Int(1));
    b.respond(push, OpValue::Bool(true));
    let figure1_top = b.build();
    group.bench_function("figure1_top_stack", |bench| {
        let checker = LinSpec::new(linrv_spec::StackSpec::new());
        bench.iter(|| checker.contains(&figure1_top));
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench_history_length, bench_partitioning, bench_figure_histories
}
criterion_main!(benches);
