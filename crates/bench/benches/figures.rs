//! Experiments E1–E7: the paper's figures as executable scenarios. Each benchmark
//! re-runs one figure's construction and asserts the caption's claim — the measured
//! quantity is the cost of reproducing and re-checking the figure, and a failed
//! assertion means the reproduction no longer matches the paper.

use criterion::{criterion_group, criterion_main, Criterion};
use linrv_check::{GenLinObject, LinSpec};
use linrv_core::drv::Drv;
use linrv_core::impossibility::theorem51_demo;
use linrv_core::sketch::sketch_history;
use linrv_core::view::TupleSet;
use linrv_history::{HistoryBuilder, OpValue, ProcessId};
use linrv_runtime::faulty::Theorem51Queue;
use linrv_spec::ops::{queue, stack};
use linrv_spec::{QueueSpec, StackSpec};
use std::time::Duration;

fn quick() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(100))
        .measurement_time(Duration::from_millis(400))
}

fn p(i: u32) -> ProcessId {
    ProcessId::new(i)
}

fn bench_figures(c: &mut Criterion) {
    let mut group = c.benchmark_group("E1_E7_figures");

    group.bench_function("E1_figure1_same_views_different_verdicts", |b| {
        b.iter(|| {
            use linrv_history::OpId;
            let object = LinSpec::new(StackSpec::new());
            let (push_id, pop_id) = (OpId::new(0), OpId::new(1));
            let mut top = HistoryBuilder::new();
            top.invoke_with_id(p(0), push_id, stack::push(1));
            top.invoke_with_id(p(1), pop_id, stack::pop());
            top.respond(pop_id, OpValue::Int(1));
            top.respond(push_id, OpValue::Bool(true));
            let mut bottom = HistoryBuilder::new();
            bottom.invoke_with_id(p(1), pop_id, stack::pop());
            bottom.respond(pop_id, OpValue::Int(1));
            bottom.invoke_with_id(p(0), push_id, stack::push(1));
            bottom.respond(push_id, OpValue::Bool(true));
            let top = top.build();
            let bottom = bottom.build();
            assert!(top.equivalent(&bottom));
            assert!(object.contains(&top));
            assert!(!object.contains(&bottom));
        });
    });

    group.bench_function("E3_figure4_impossibility_demo", |b| {
        b.iter(|| {
            let demo = theorem51_demo();
            assert!(demo.executions_are_indistinguishable());
            assert!(demo.e_violates_linearizability());
            assert!(demo.f_is_linearizable());
        });
    });

    group.bench_function("E4_E5_E6_figure_5_6_8_stretch_shrink_enforce", |b| {
        b.iter(|| {
            let object = LinSpec::new(QueueSpec::new());
            // Figure 5/8: announcements happen early, the sketch overlaps — enforced.
            let drv = Drv::new(Theorem51Queue::new(p(1)), 2);
            let deq = drv.announce(p(1), &queue::dequeue());
            let enq = drv.announce(p(0), &queue::enqueue(1));
            let deq_value = drv.call_inner(&deq);
            let enq_value = drv.call_inner(&enq);
            let mut tuples = TupleSet::new();
            tuples.insert(drv.collect(deq, deq_value).tuple());
            tuples.insert(drv.collect(enq, enq_value).tuple());
            assert!(object.contains(&sketch_history(&tuples).unwrap()));

            // Figure 6 (bottom): tight phases, the violation is preserved — detectable.
            let drv = Drv::new(Theorem51Queue::new(p(1)), 2);
            let deq = drv.announce(p(1), &queue::dequeue());
            let deq_value = drv.call_inner(&deq);
            let deq_resp = drv.collect(deq, deq_value);
            let enq = drv.announce(p(0), &queue::enqueue(1));
            let enq_value = drv.call_inner(&enq);
            let enq_resp = drv.collect(enq, enq_value);
            let mut tuples = TupleSet::new();
            tuples.insert(deq_resp.tuple());
            tuples.insert(enq_resp.tuple());
            assert!(!object.contains(&sketch_history(&tuples).unwrap()));
        });
    });

    group.bench_function("E7_figure9_views_to_history", |b| {
        use linrv_core::view::{InvocationPair, ViewTuple};
        use linrv_history::{OpId, Operation};
        b.iter(|| {
            let mk = |proc: u32, id: u64| InvocationPair {
                process: p(proc),
                op_id: OpId::new(id),
                operation: Operation::new("Apply", OpValue::Int(id as i64)),
            };
            let (a, b_, c, d) = (mk(0, 0), mk(0, 1), mk(1, 2), mk(2, 3));
            let v1: linrv_core::view::View = [a.clone()].into_iter().collect();
            let v2: linrv_core::view::View =
                [a.clone(), b_.clone(), c.clone()].into_iter().collect();
            let v3: linrv_core::view::View = [a.clone(), b_.clone(), c.clone(), d.clone()]
                .into_iter()
                .collect();
            let mut tuples = TupleSet::new();
            tuples.insert(ViewTuple::new(a, OpValue::Str("a".into()), v1));
            tuples.insert(ViewTuple::new(b_, OpValue::Str("b".into()), v2));
            tuples.insert(ViewTuple::new(d, OpValue::Str("d".into()), v3));
            let history = sketch_history(&tuples).unwrap();
            assert_eq!(history.complete_operations().count(), 3);
            assert_eq!(history.pending_operations().count(), 1);
        });
    });

    group.finish();
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench_figures
}
criterion_main!(benches);
