//! Facade satellite: the typed session layer must be zero-cost (within noise)
//! over the raw untyped API. Both sides run the identical counter workload —
//! 8 verified fetch-and-increments on a fresh instance per batch — so the only
//! difference between the two measurements is the facade itself (typed
//! encode/decode plus the session indirection).

use criterion::{criterion_group, criterion_main, Criterion};
use linrv::history::ProcessId;
use linrv::prelude::*;
use linrv::raw::{LinSpec, SelfEnforced};
use linrv::runtime::impls::AtomicCounter;
use linrv::spec::ops::counter;
use std::time::Duration;

fn quick() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(100))
        .measurement_time(Duration::from_millis(400))
}

fn bench_facade_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("E16_facade_overhead_counter");
    let p0 = ProcessId::new(0);

    group.bench_function("raw_apply_verified", |b| {
        b.iter_batched(
            || SelfEnforced::new(AtomicCounter::new(), LinSpec::new(CounterSpec::new()), 1),
            |enforced| {
                for _ in 0..8 {
                    enforced.apply_verified(p0, &counter::inc());
                }
            },
            criterion::BatchSize::SmallInput,
        );
    });

    group.bench_function("typed_session", |b| {
        b.iter_batched(
            || {
                let monitor = Monitor::builder(CounterSpec::new())
                    .processes(1)
                    .build(AtomicCounter::new());
                let session = monitor.register().expect("fresh monitor has a free slot");
                (monitor, session)
            },
            |(_monitor, session)| {
                for _ in 0..8 {
                    session.inc().expect("a correct counter is never rejected");
                }
            },
            criterion::BatchSize::SmallInput,
        );
    });

    group.finish();
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench_facade_overhead
}
criterion_main!(benches);
