//! Experiment E9 (Claim 8.1 / Theorem 8.1(1)): one verifier loop iteration costs `O(n)`
//! base-object steps plus the local membership test. We measure `Verifier::observe`
//! while sweeping the number of processes `n` (snapshot width) and, separately, the
//! accumulated history length (the membership-test component).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use linrv_check::LinSpec;
use linrv_core::drv::Drv;
use linrv_core::verifier::Verifier;
use linrv_history::ProcessId;
use linrv_runtime::impls::MsQueue;
use linrv_spec::ops::queue;
use linrv_spec::QueueSpec;
use std::time::Duration;

fn quick() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(100))
        .measurement_time(Duration::from_millis(400))
}

fn bench_snapshot_width(c: &mut Criterion) {
    let mut group = c.benchmark_group("E9_verifier_snapshot_width");
    let p0 = ProcessId::new(0);
    for n in linrv_bench::PROCESS_SWEEP {
        group.bench_with_input(BenchmarkId::new("observe_pair", n), &n, |b, &n| {
            b.iter_batched(
                || {
                    (
                        Drv::new(MsQueue::new(), n),
                        Verifier::new(LinSpec::new(QueueSpec::new()), n),
                    )
                },
                |(drv, verifier)| {
                    let r = drv.apply_drv(p0, &queue::enqueue(1));
                    verifier.observe(p0, r.tuple());
                    let r = drv.apply_drv(p0, &queue::dequeue());
                    verifier.observe(p0, r.tuple())
                },
                criterion::BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

fn bench_history_length(c: &mut Criterion) {
    let mut group = c.benchmark_group("E9_verifier_history_length");
    let p0 = ProcessId::new(0);
    for len in [8usize, 32, 64] {
        group.bench_with_input(BenchmarkId::new("re_verify_after", len), &len, |b, &len| {
            // Pre-populate a verifier with `len` verified operations, then measure the
            // cost of re-running the scan + sketch + membership test (the dominant,
            // history-length-dependent part of one loop iteration). The measured call
            // is read-only, so the history length stays fixed across iterations.
            let drv = Drv::new(MsQueue::new(), 2);
            let verifier = Verifier::new(LinSpec::new(QueueSpec::new()), 2);
            for i in 0..len {
                let r = drv.apply_drv(p0, &queue::enqueue(i as i64));
                verifier.observe(p0, r.tuple());
            }
            b.iter(|| verifier.verdict_from_scan(p0));
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench_snapshot_width, bench_history_length
}
criterion_main!(benches);
