//! Experiment E10 (Definition 6.1, Theorem 8.1 (2)–(3)): completeness and detection
//! cost. We measure the wall-clock cost of running a self-enforced wrapper over faulty
//! implementations until the first ERROR is reported, for different fault rates. The
//! run also asserts that detection happened (completeness) — a bench that silently
//! stopped detecting would fail.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use linrv_check::LinSpec;
use linrv_core::enforce::SelfEnforced;
use linrv_history::ProcessId;
use linrv_runtime::faulty::{LossyQueue, StutteringCounter};
use linrv_spec::ops::{counter, queue};
use linrv_spec::{CounterSpec, QueueSpec};
use std::time::Duration;

fn quick() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(100))
        .measurement_time(Duration::from_millis(400))
}

fn ops_until_detection_lossy_queue(drop_every: u64) -> usize {
    let enforced = SelfEnforced::new(
        LossyQueue::new(drop_every),
        LinSpec::new(QueueSpec::new()),
        1,
    );
    let p0 = ProcessId::new(0);
    let mut ops = 0usize;
    for i in 0..(drop_every as i64 + 1) {
        enforced.apply_verified(p0, &queue::enqueue(i));
        ops += 1;
    }
    for _ in 0..(drop_every as i64 + 2) {
        ops += 1;
        if !enforced.apply_verified(p0, &queue::dequeue()).is_verified() {
            return ops;
        }
    }
    panic!("lossy queue violation was not detected (completeness broken)");
}

fn ops_until_detection_stuttering_counter(lose_every: u64) -> usize {
    let enforced = SelfEnforced::new(
        StutteringCounter::new(lose_every),
        LinSpec::new(CounterSpec::new()),
        1,
    );
    let p0 = ProcessId::new(0);
    for ops in 1..=(3 * lose_every as usize + 2) {
        if !enforced.apply_verified(p0, &counter::inc()).is_verified() {
            return ops;
        }
    }
    panic!("stuttering counter violation was not detected (completeness broken)");
}

fn bench_detection(c: &mut Criterion) {
    let mut group = c.benchmark_group("E10_detection");
    for drop_every in [2u64, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("lossy_queue_until_error", drop_every),
            &drop_every,
            |b, &k| b.iter(|| ops_until_detection_lossy_queue(k)),
        );
    }
    for lose_every in [2u64, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("stuttering_counter_until_error", lose_every),
            &lose_every,
            |b, &k| b.iter(|| ops_until_detection_stuttering_counter(k)),
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench_detection
}
criterion_main!(benches);
