//! Experiment E13 (Section 9.1): representing the grow-only announcement sets as
//! persistent linked lists (publish a head pointer, `O(1)` per update) vs. cloning
//! whole `BTreeSet`s into the register (the unbounded-size formulation of Figure 7),
//! for increasing set sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use linrv_core::bounded::PersistentList;
use std::collections::BTreeSet;
use std::time::Duration;

fn quick() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(100))
        .measurement_time(Duration::from_millis(400))
}

fn bench_publish(c: &mut Criterion) {
    let mut group = c.benchmark_group("E13_announcement_publish");
    for size in [16usize, 128, 1024] {
        group.bench_with_input(
            BenchmarkId::new("btreeset_clone_insert", size),
            &size,
            |b, &size| {
                let mut set = BTreeSet::new();
                for i in 0..size {
                    set.insert(i);
                }
                b.iter(|| {
                    // One announcement: clone the set (what the register write stores) and
                    // insert the new element.
                    let mut published = set.clone();
                    published.insert(size + 1);
                    published
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("persistent_list_push", size),
            &size,
            |b, &size| {
                let mut list = PersistentList::new();
                for i in 0..size {
                    list = list.push(i);
                }
                b.iter(|| list.push(size + 1));
            },
        );
    }
    group.finish();
}

fn bench_read_back(c: &mut Criterion) {
    // The flip side: materialising the set from the linked list costs O(size) at scan
    // time, whereas the cloned BTreeSet is immediately usable.
    let mut group = c.benchmark_group("E13_announcement_read_back");
    for size in [16usize, 128, 1024] {
        group.bench_with_input(
            BenchmarkId::new("persistent_list_to_set", size),
            &size,
            |b, &size| {
                let mut list = PersistentList::new();
                for i in 0..size {
                    list = list.push(i);
                }
                b.iter(|| list.to_set());
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench_publish, bench_read_back
}
criterion_main!(benches);
