//! Experiment E15 (Definition 7.3, references [1, 63]): cost of the snapshot object
//! implementations the constructions are built on — the wait-free Afek et al. snapshot
//! with helping, the obstruction-free double-collect baseline, and the blocking
//! mutex-based oracle — for increasing numbers of entries.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use linrv_snapshot::{AfekSnapshot, DoubleCollectSnapshot, LockedSnapshot, Snapshot};
use std::time::Duration;

fn quick() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(100))
        .measurement_time(Duration::from_millis(400))
}

fn bench_write_scan(c: &mut Criterion) {
    let mut group = c.benchmark_group("E15_snapshot_write_scan");
    for n in linrv_bench::PROCESS_SWEEP {
        group.bench_with_input(BenchmarkId::new("afek", n), &n, |b, &n| {
            let s = AfekSnapshot::new(n, 0u64);
            let mut v = 0u64;
            b.iter(|| {
                v += 1;
                s.write(0, v);
                s.scan(0)
            });
        });
        group.bench_with_input(BenchmarkId::new("double_collect", n), &n, |b, &n| {
            let s = DoubleCollectSnapshot::new(n, 0u64);
            let mut v = 0u64;
            b.iter(|| {
                v += 1;
                s.write(0, v);
                s.scan(0)
            });
        });
        group.bench_with_input(BenchmarkId::new("locked_oracle", n), &n, |b, &n| {
            let s = LockedSnapshot::new(n, 0u64);
            let mut v = 0u64;
            b.iter(|| {
                v += 1;
                s.write(0, v);
                s.scan(0)
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench_write_scan
}
criterion_main!(benches);
