//! Cross-crate integration and property tests for the `linrv` workspace.
//!
//! The actual tests live under `tests/`; this library only hosts small shared helpers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use linrv_history::ProcessId;

/// Shorthand used across the integration tests.
pub fn p(i: u32) -> ProcessId {
    ProcessId::new(i)
}

#[cfg(test)]
mod tests {
    #[test]
    fn helper_builds_process_ids() {
        assert_eq!(super::p(3).index(), 3);
    }
}
