//! Tier-1 gates for the `linrv-obs` layer.
//!
//! Two properties are pinned. First, the kill switch works: with recording
//! off (the default) the instrumented session hot path stays within noise of
//! itself with recording on — the gate is deliberately generous (3x plus an
//! absolute slack) because debug-build timing is noisy, while a real
//! regression (say, a lock on the hot path) is orders of magnitude.
//! Second, the recorded numbers are *consistent*: announce/collect counters
//! obey the paper's phase structure (`announced == collected + pending`) and
//! latency histograms carry exactly one sample per completed operation.
//!
//! Everything here shares the process-wide enabled flag and the cumulative
//! global registry, so every test takes [`OBS_LOCK`] and measures deltas
//! under it.

use linrv::prelude::*;
use linrv::runtime::impls::AtomicCounter;
use linrv_core::Drv;
use linrv_spec::ops::counter;
use proptest::prelude::*;
use std::sync::Mutex;
use std::time::Instant;

static OBS_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    // A poisoned lock only means another test failed; the registry itself
    // stays usable.
    OBS_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

#[test]
fn recording_overhead_is_within_noise() {
    let _guard = lock();
    let time = |on: bool| -> Option<u128> {
        if linrv_obs::set_enabled(on) != on {
            return None; // compile-off build: nothing to gate
        }
        // Verified session ops re-check the growing prefix, so the batch is
        // kept small — the point is the relative cost of recording, not an
        // absolute throughput number.
        let mut best = u128::MAX;
        for _ in 0..5 {
            let monitor = Monitor::builder(CounterSpec::new())
                .processes(1)
                .build(AtomicCounter::new());
            let session = monitor.register().expect("fresh monitor has a free slot");
            let start = Instant::now();
            for _ in 0..48 {
                session.inc().expect("a correct counter is never rejected");
            }
            best = best.min(start.elapsed().as_nanos());
        }
        linrv_obs::set_enabled(false);
        Some(best)
    };
    let off = time(false).expect("disabling recording always takes effect");
    let Some(on) = time(true) else {
        return;
    };
    assert!(
        on <= off * 3 + 2_000_000,
        "recording tripled the session hot path: {on}ns on vs {off}ns off"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Figure 7 phase accounting: every operation is announced exactly once,
    /// collected at most once, and the gap is exactly the processes that
    /// announced and then stopped (crashed or still in flight). Each collect
    /// contributes one announce-view size sample.
    #[test]
    fn announce_collect_counters_are_consistent(op_count in 1..40usize, pending in 0..4usize) {
        let _guard = lock();
        if !linrv_obs::set_enabled(true) {
            return; // compile-off build: nothing is recorded
        }
        let announced0 = linrv_core::metrics::ops_announced().get();
        let collected0 = linrv_core::metrics::ops_collected().get();
        let views0 = linrv_core::metrics::view_size().snapshot_values().count;

        let drv = Drv::new(AtomicCounter::new(), pending + 1);
        let worker = drv.register().expect("fresh wrapper has free slots");
        for _ in 0..op_count {
            let _ = drv.apply_drv(worker, &counter::inc());
        }
        // `pending` processes announce and never collect.
        for _ in 0..pending {
            let process = drv.register().expect("slots sized for the pending set");
            let _ = drv.announce(process, &counter::inc());
        }
        linrv_obs::set_enabled(false);

        let announced = linrv_core::metrics::ops_announced().get() - announced0;
        let collected = linrv_core::metrics::ops_collected().get() - collected0;
        let views = linrv_core::metrics::view_size().snapshot_values().count - views0;
        prop_assert_eq!(announced, (op_count + pending) as u64);
        prop_assert_eq!(collected, op_count as u64);
        prop_assert_eq!(announced - collected, pending as u64);
        prop_assert_eq!(views, collected);
    }

    /// The session latency histogram carries exactly one sample per completed
    /// operation — the same count the verifier's sketched history reports.
    #[test]
    fn session_latency_samples_match_the_history(op_count in 1..30usize) {
        let _guard = lock();
        if !linrv_obs::set_enabled(true) {
            return;
        }
        let samples0 = linrv::metrics::op_ns().snapshot_values().count;
        let monitor = Monitor::builder(CounterSpec::new())
            .processes(2)
            .build(AtomicCounter::new());
        let session = monitor.register().expect("fresh monitor has free slots");
        for _ in 0..op_count {
            session.inc().expect("a correct counter is never rejected");
        }
        linrv_obs::set_enabled(false);

        let samples = linrv::metrics::op_ns().snapshot_values().count - samples0;
        let scanner = monitor.as_raw().register().expect("second slot is free");
        let history = monitor
            .as_raw()
            .verifier()
            .current_sketch(scanner)
            .expect("a verified run sketches cleanly");
        prop_assert_eq!(samples as usize, history.complete_operations().count());
        prop_assert_eq!(samples as usize, op_count);
    }
}
