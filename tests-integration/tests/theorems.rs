//! Integration tests tied to specific numbered statements of the paper.

use linrv_check::genlin::check_closure_on;
use linrv_check::{GenLinObject, LinSpec};
use linrv_core::enforce::SelfEnforced;
use linrv_history::{OpValue, ProcessId};
use linrv_runtime::faulty::LossyQueue;
use linrv_runtime::impls::{MsQueue, SpecObject};
use linrv_runtime::{record_execution, RecorderOptions, Workload, WorkloadKind};
use linrv_spec::ops::queue;
use linrv_spec::{QueueSpec, StackSpec};

fn p(i: u32) -> ProcessId {
    ProcessId::new(i)
}

/// Lemma 7.1 (GenLin closure): the linearizability objects used throughout are
/// prefix-closed on real recorded histories of correct implementations.
#[test]
fn lemma_7_1_prefix_closure_on_recorded_histories() {
    let queue = SpecObject::new(QueueSpec::new());
    let run = record_execution(
        &queue,
        Workload::new(WorkloadKind::Queue, 7),
        RecorderOptions {
            processes: 2,
            ops_per_process: 12,
        },
    );
    let object = LinSpec::new(QueueSpec::new());
    assert!(object.contains(&run.history));
    let report = check_closure_on(&object, &run.history, &[]);
    assert!(report.is_clean(), "prefix closure violated: {report:?}");
}

/// Theorem 8.2 (1): the self-enforced wrapper preserves progress — concretely, a
/// bounded number of operations completes without any coordination beyond the wrapped
/// object's own, even when other processes never take part (solo runs terminate).
#[test]
fn theorem_8_2_progress_is_preserved_in_solo_runs() {
    // A 4-process wrapper driven by only one process: if the construction needed help
    // from the other (crashed) processes, this loop would hang. Wait-freedom of the
    // snapshot and verifier code means it terminates.
    let enforced = SelfEnforced::new(MsQueue::new(), LinSpec::new(QueueSpec::new()), 4);
    for i in 0..25 {
        assert!(enforced
            .apply_verified(p(0), &queue::enqueue(i))
            .is_verified());
    }
    for _ in 0..25 {
        assert!(enforced
            .apply_verified(p(0), &queue::dequeue())
            .is_verified());
    }
    assert!(enforced.certificate().is_correct());
}

/// Theorem 8.2 (2): for an incorrect `A`, every execution of `V_{O,A}` is correct up to
/// a prefix after which operations return ERROR — i.e. the certificate's sketch is
/// linearizable right up to the first flagged operation.
#[test]
fn theorem_8_2_certified_prefix_is_correct_until_first_error() {
    let enforced = SelfEnforced::new(LossyQueue::new(3), LinSpec::new(QueueSpec::new()), 1);
    let mut certificates = Vec::new();
    let mut first_error = None;
    let mut step = 0usize;
    for i in 0..5 {
        let r = enforced.apply_verified(p(0), &queue::enqueue(i));
        certificates.push((step, enforced.certificate(), r.is_verified()));
        if first_error.is_none() && !r.is_verified() {
            first_error = Some(step);
        }
        step += 1;
    }
    for _ in 0..6 {
        let r = enforced.apply_verified(p(0), &queue::dequeue());
        certificates.push((step, enforced.certificate(), r.is_verified()));
        if first_error.is_none() && !r.is_verified() {
            first_error = Some(step);
        }
        step += 1;
    }
    let first_error = first_error.expect("the lossy queue must eventually be flagged");
    for (step, certificate, _) in &certificates {
        if *step < first_error {
            assert!(
                certificate.is_correct(),
                "certificate at step {step} (before the first error at {first_error}) must be correct"
            );
        }
    }
    // And after the first error the final certificate records the violation.
    assert!(!certificates.last().unwrap().1.is_correct());
}

/// Theorem 8.2 (3): the certificate produced on request is a history over exactly the
/// operations applied so far, and it can be independently re-checked by a third party
/// using only the public checker.
#[test]
fn theorem_8_2_certificates_are_independently_checkable() {
    let enforced = SelfEnforced::new(MsQueue::new(), LinSpec::new(QueueSpec::new()), 2);
    enforced.apply_verified(p(0), &queue::enqueue(1));
    enforced.apply_verified(p(1), &queue::enqueue(2));
    enforced.apply_verified(p(0), &queue::dequeue());
    let certificate = enforced.certificate();
    assert_eq!(certificate.operations(), 3);
    // Third-party re-check: rebuild the verdict from the certificate alone.
    let third_party = LinSpec::new(QueueSpec::new());
    assert_eq!(
        third_party.contains(&certificate.sketch),
        certificate.is_correct()
    );
}

/// Remark 7.1: a history is linearizable w.r.t. the sequential object iff it belongs to
/// the abstract object of all linearizable histories — i.e. `GenLinObject::contains`
/// and the verdict-level checker agree.
#[test]
fn remark_7_1_membership_and_verdicts_agree() {
    let object = LinSpec::new(StackSpec::new());
    use linrv_history::HistoryBuilder;
    use linrv_spec::ops::stack;
    let mut good = HistoryBuilder::new();
    let a = good.invoke(p(0), stack::push(1));
    let b = good.invoke(p(1), stack::pop());
    good.respond(b, OpValue::Int(1));
    good.respond(a, OpValue::Bool(true));
    let good = good.build();
    let mut bad = HistoryBuilder::new();
    let b = bad.invoke(p(1), stack::pop());
    bad.respond(b, OpValue::Int(1));
    let a = bad.invoke(p(0), stack::push(1));
    bad.respond(a, OpValue::Bool(true));
    let bad = bad.build();

    assert_eq!(object.contains(&good), object.check(&good).is_member());
    assert_eq!(object.contains(&bad), !object.check(&bad).is_violation());
    assert!(object.check(&good).is_member());
    assert!(object.check(&bad).is_violation());
}
