//! Property tests for the trace subsystem:
//!
//! * JSONL ↔ binary ↔ `History` round-trips are lossless for all seven
//!   specifications, over both correct and fault-injected executions;
//! * offline-checking a round-tripped trace yields the same verdict as the
//!   in-memory checker on the original history (the whole point of making
//!   traces portable);
//! * the scheduled recorder is deterministic per seed — same seed, same
//!   history, byte-for-byte same trace.

use linrv_check::stream::check_events;
use linrv_check::{LinSpec, Verdict};
use linrv_history::History;
use linrv_runtime::{faulty, impls, record_scheduled, RecorderOptions, Workload, WorkloadKind};
use linrv_spec::{
    ConsensusSpec, CounterSpec, ObjectKind, PriorityQueueSpec, QueueSpec, RegisterSpec, SetSpec,
    StackSpec,
};
use linrv_trace::{read_history, write_history, Provenance, TraceError, TraceFormat, TraceHeader};
use proptest::prelude::*;

/// A deterministic scheduled run for the generated parameters: correct
/// (sequential specification) or faulty (the kind's fault injector).
fn generate(kind: ObjectKind, seed: u64, faulty: bool, processes: usize, ops: usize) -> History {
    let object = if faulty {
        faulty::faulty_object(kind, 3)
    } else {
        impls::spec_object(kind)
    };
    record_scheduled(
        &*object,
        Workload::new(WorkloadKind::for_object(kind), seed),
        RecorderOptions {
            processes,
            ops_per_process: ops,
        },
        seed ^ 0xDECAF,
    )
    .history
}

/// In-memory verdict on `history`, and the streamed verdict on `events`; both
/// as `is_violation`.
fn verdicts(kind: ObjectKind, history: &History, round_tripped: &History) -> (bool, bool) {
    macro_rules! both {
        ($mk:expr) => {{
            let batch = LinSpec::new($mk).check(history);
            assert!(
                !matches!(batch, Verdict::Inconclusive),
                "no budget is configured"
            );
            let streamed =
                check_events::<_, TraceError>($mk, round_tripped.events().iter().cloned().map(Ok))
                    .expect("in-memory events cannot fail")
                    .1;
            (batch.is_violation(), streamed.is_violation())
        }};
    }
    match kind {
        ObjectKind::Queue => both!(QueueSpec::new()),
        ObjectKind::Stack => both!(StackSpec::new()),
        ObjectKind::Set => both!(SetSpec::new()),
        ObjectKind::PriorityQueue => both!(PriorityQueueSpec::new()),
        ObjectKind::Counter => both!(CounterSpec::new()),
        ObjectKind::Register => both!(RegisterSpec::new()),
        ObjectKind::Consensus => both!(ConsensusSpec::new()),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// JSONL ↔ binary ↔ `History` is lossless for every spec, and the verdict
    /// survives the round trip.
    #[test]
    fn round_trips_are_lossless_and_verdict_preserving(
        kind_index in 0..7usize,
        seed in 0..1_000u64,
        faulty in any::<bool>(),
        processes in 1..4usize,
        ops in 1..10usize,
    ) {
        let kind = ObjectKind::ALL[kind_index];
        let history = generate(kind, seed, faulty, processes, ops);
        let header = TraceHeader::new(kind)
            .with_seed(seed)
            .with_processes(processes as u32)
            .with_ops_per_process(ops as u32)
            .with_provenance(if faulty { Provenance::Faulty } else { Provenance::Correct });

        // History → jsonl → History.
        let mut jsonl = Vec::new();
        write_history(&mut jsonl, TraceFormat::Jsonl, &header, &history).unwrap();
        let (h1, from_jsonl) = read_history(jsonl.as_slice()).unwrap();
        prop_assert_eq!(&h1, &header);
        prop_assert_eq!(&from_jsonl, &history);

        // History → binary → History.
        let mut binary = Vec::new();
        write_history(&mut binary, TraceFormat::Binary, &header, &history).unwrap();
        let (h2, from_binary) = read_history(binary.as_slice()).unwrap();
        prop_assert_eq!(&h2, &header);
        prop_assert_eq!(&from_binary, &history);

        // The chained conversion jsonl → binary → jsonl is byte-identical.
        let mut jsonl_again = Vec::new();
        write_history(&mut jsonl_again, TraceFormat::Jsonl, &h2, &from_binary).unwrap();
        prop_assert_eq!(&jsonl_again, &jsonl);

        // Checking the round-tripped trace = checking the original history.
        let (batch, streamed) = verdicts(kind, &history, &from_binary);
        prop_assert_eq!(batch, streamed);
        if !faulty {
            prop_assert!(!batch, "spec-object runs are correct by construction");
        }
    }

    /// Bit-for-bit determinism: the same seed reproduces the same trace bytes;
    /// different seeds diverge (for workloads with any randomness).
    #[test]
    fn scheduled_traces_are_deterministic_per_seed(
        kind_index in 0..7usize,
        seed in 0..1_000u64,
    ) {
        let kind = ObjectKind::ALL[kind_index];
        let header = TraceHeader::new(kind).with_seed(seed);
        let encode = |history: &History| {
            let mut bytes = Vec::new();
            write_history(&mut bytes, TraceFormat::Binary, &header, history).unwrap();
            bytes
        };
        let a = encode(&generate(kind, seed, false, 3, 8));
        let b = encode(&generate(kind, seed, false, 3, 8));
        prop_assert_eq!(a, b);
    }
}
