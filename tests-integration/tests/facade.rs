//! Facade integration tests: the typed layer is a *lossless encoding* of the raw
//! untyped API, and a typed session run produces verdicts identical to the raw
//! API on the same workload.

use linrv::prelude::*;
use linrv::raw::{LinSpec, ProcessId, SelfEnforced};
use linrv::runtime::faulty::LossyQueue;
use linrv::runtime::impls::MsQueue;
use linrv::runtime::{Workload, WorkloadKind};
use linrv::spec::typed::queue::QueueOp;
use linrv::spec::typed::{consensus, counter, priority_queue, queue, register, set, stack};
use proptest::prelude::*;

/// Encode → decode must reproduce the typed operation exactly.
fn round_trip_op<Op: TypedOp>(op: Op) {
    let wire = op.encode();
    assert_eq!(Op::try_decode(&wire), Ok(op), "lossy encoding of {wire}");
}

/// Encode → decode must reproduce the typed response exactly.
fn round_trip_response<Op: TypedOp>(op: &Op, response: Op::Response) {
    let wire = op.encode_response(&response);
    assert_eq!(
        op.decode_response(&wire),
        Ok(response),
        "lossy response encoding via {wire}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Satellite: for every spec, random typed operations encode to
    /// `Operation`/`OpValue` and decode back losslessly — operations *and*
    /// responses.
    #[test]
    fn typed_layer_round_trips_for_every_spec(
        variant in 0..14usize, v in any::<i64>(), flag in any::<bool>()
    ) {
        let take = if flag { Some(v) } else { None };
        match variant {
            0 => {
                round_trip_op(queue::Enqueue(v));
                round_trip_response(&queue::Enqueue(v), ());
            }
            1 => {
                round_trip_op(queue::Dequeue);
                round_trip_response(&queue::Dequeue, take);
            }
            2 => {
                round_trip_op(stack::Push(v));
                round_trip_response(&stack::Push(v), ());
            }
            3 => {
                round_trip_op(stack::Pop);
                round_trip_response(&stack::Pop, take);
            }
            4 => {
                round_trip_op(set::Add(v));
                round_trip_response(&set::Add(v), flag);
            }
            5 => {
                round_trip_op(set::Remove(v));
                round_trip_response(&set::Remove(v), flag);
            }
            6 => {
                round_trip_op(set::Contains(v));
                round_trip_response(&set::Contains(v), flag);
            }
            7 => {
                round_trip_op(priority_queue::Insert(v));
                round_trip_response(&priority_queue::Insert(v), ());
            }
            8 => {
                round_trip_op(priority_queue::ExtractMin);
                round_trip_response(&priority_queue::ExtractMin, take);
            }
            9 => {
                round_trip_op(counter::Inc);
                round_trip_response(&counter::Inc, v);
            }
            10 => {
                round_trip_op(counter::Read);
                round_trip_response(&counter::Read, v);
            }
            11 => {
                round_trip_op(register::Write(v));
                round_trip_response(&register::Write(v), ());
            }
            12 => {
                round_trip_op(register::Read);
                round_trip_response(&register::Read, v);
            }
            _ => {
                round_trip_op(consensus::Decide(v));
                round_trip_response(&consensus::Decide(v), v);
            }
        }
    }

    /// The uniform per-object enums decode any wire operation of their interface
    /// and re-encode it unchanged.
    #[test]
    fn uniform_enums_round_trip_the_wire_format(enqueue in any::<bool>(), v in any::<i64>()) {
        let wire = if enqueue {
            linrv::spec::ops::queue::enqueue(v)
        } else {
            linrv::spec::ops::queue::dequeue()
        };
        let decoded = QueueOp::try_decode(&wire).expect("interface is covered");
        assert_eq!(decoded.encode(), wire);
    }

    /// Satellite: a typed session run over `LockedSnapshot` produces verdicts
    /// identical to the raw untyped API on the same seed — operation by
    /// operation, including the underlying value carried by rejections.
    #[test]
    fn typed_sessions_match_raw_verdicts_on_the_same_seed(
        seed in any::<u64>(), len in 1..20usize, drop_every in 2..6u64, procs in 1..4usize
    ) {
        let monitor = Monitor::builder(QueueSpec::new())
            .processes(procs)
            .snapshot(SnapshotBackend::Locked)
            .build(LossyQueue::new(drop_every));
        let sessions: Vec<_> = (0..procs)
            .map(|_| monitor.register().expect("capacity matches procs"))
            .collect();
        let raw = SelfEnforced::new(
            LossyQueue::new(drop_every),
            LinSpec::new(QueueSpec::new()),
            procs,
        );

        let workload = Workload::new(WorkloadKind::Queue, seed);
        let plans: Vec<_> = (0..procs)
            .map(|p| workload.operations_for(p, len))
            .collect();

        // Drive both stacks through the identical sequential interleaving.
        for step in 0..len {
            for (p, plan) in plans.iter().enumerate() {
                let wire = &plan[step];
                let typed_op = QueueOp::try_decode(wire).expect("queue workload");
                let typed = sessions[p].apply(typed_op);
                let raw_response = raw.apply_verified(ProcessId::new(p as u32), wire);
                match typed {
                    Ok(value) => {
                        assert!(
                            raw_response.is_verified(),
                            "typed accepted what raw rejected"
                        );
                        assert_eq!(value, raw_response.value);
                    }
                    Err(rejected) => {
                        assert!(
                            rejected.is_violation(),
                            "workload responses always decode: {rejected}"
                        );
                        assert!(
                            !raw_response.is_verified(),
                            "typed rejected what raw accepted"
                        );
                        assert_eq!(rejected.underlying(), &raw_response.underlying);
                    }
                }
            }
        }
        assert_eq!(
            monitor.certificate().is_correct(),
            raw.certificate().is_correct(),
            "final verdicts diverged"
        );
    }
}

/// Dynamic registration replaces the fixed upfront process count: slots are
/// leased, enforced and recycled, and the verifier state survives recycling.
#[test]
fn registration_is_capacity_bounded_and_recycles() {
    let monitor = Monitor::builder(QueueSpec::new())
        .processes(2)
        .build(MsQueue::new());
    let a = monitor.register().expect("slot 0");
    let b = monitor.register().expect("slot 1");
    let err = monitor.register().expect_err("capacity is 2");
    assert_eq!(err.capacity, 2);

    a.enqueue(1).unwrap();
    drop(a);
    let c = monitor.register().expect("slot 0 recycled");
    assert_eq!(c.dequeue().unwrap(), Some(1), "state survives recycling");
    drop(b);
    drop(c);
    assert_eq!(monitor.registered(), 0);
    assert!(monitor.certificate().is_correct());
}

/// Sessions move into worker threads; a correct queue is never rejected
/// (soundness, end to end through the facade).
#[test]
fn concurrent_typed_sessions_over_a_correct_queue_never_reject() {
    let monitor = Monitor::builder(QueueSpec::new())
        .processes(3)
        .build(MsQueue::new());
    let rejected: usize = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for t in 0..3i64 {
            let session = monitor.register().expect("one slot per thread");
            handles.push(scope.spawn(move || {
                let mut rejections = 0usize;
                for i in 0..20 {
                    let outcome = if (t + i) % 2 == 0 {
                        session.enqueue(t * 1000 + i).err()
                    } else {
                        session.dequeue().err()
                    };
                    if outcome.is_some() {
                        rejections += 1;
                    }
                }
                rejections
            }));
        }
        handles.into_iter().map(|h| h.join().unwrap()).sum()
    });
    assert_eq!(rejected, 0, "false alarm on a correct queue");
    assert!(monitor.check().is_correct());
}
