//! Differential tests for the specialized log-linear monitors: on recorded
//! executions — correct and fault-injected, across every covered object kind
//! — the [`StrategyChecker`] must agree with the general Wing–Gong search,
//! and ambiguous histories must take the documented fallback route.

use linrv_check::{CheckerStrategy, FallbackReason, LinSpec, Route, StrategyChecker, Verdict};
use linrv_history::{History, HistoryBuilder, OpValue, ProcessId};
use linrv_runtime::{faulty, impls, record_scheduled, RecorderOptions, Workload, WorkloadKind};
use linrv_spec::ops::{queue, stack};
use linrv_spec::{
    CounterSpec, ObjectKind, PriorityQueueSpec, QueueSpec, RegisterSpec, SequentialSpec, SetSpec,
    StackSpec,
};
use proptest::prelude::*;

const COVERED_KINDS: [ObjectKind; 6] = [
    ObjectKind::Queue,
    ObjectKind::Stack,
    ObjectKind::Set,
    ObjectKind::PriorityQueue,
    ObjectKind::Counter,
    ObjectKind::Register,
];

/// Records one deterministic execution: the kind's canonical concurrent
/// implementation, or its fault injector corrupting every `every`-th apply.
fn record(kind: ObjectKind, seed: u64, faulty_every: Option<u64>) -> History {
    let object = match faulty_every {
        Some(every) => faulty::faulty_object(kind, every),
        None => impls::correct_object(kind),
    };
    let workload = Workload::new(WorkloadKind::for_object(kind), seed);
    let options = RecorderOptions {
        processes: 3,
        ops_per_process: 12,
    };
    record_scheduled(&*object, workload, options, seed ^ 0x5EED_D1FF).history
}

/// Checks `history` both ways and asserts the verdicts agree; returns the
/// strategy route actually taken.
fn differential<S: SequentialSpec + Copy>(spec: S, history: &History) -> Route {
    let general = LinSpec::new(spec).check(history);
    let (routed, route) = StrategyChecker::new(spec).check_routed(history);
    assert!(
        !matches!(routed, Verdict::Inconclusive),
        "Auto strategy may never be inconclusive (route {route:?})"
    );
    assert_eq!(
        routed.is_violation(),
        general.is_violation(),
        "strategy dispatch ({route:?}) disagrees with the general search",
    );
    route
}

fn differential_for(kind: ObjectKind, history: &History) -> Route {
    match kind {
        ObjectKind::Queue => differential(QueueSpec::new(), history),
        ObjectKind::Stack => differential(StackSpec::new(), history),
        ObjectKind::Set => differential(SetSpec::new(), history),
        ObjectKind::PriorityQueue => differential(PriorityQueueSpec::new(), history),
        ObjectKind::Counter => differential(CounterSpec::new(), history),
        ObjectKind::Register => differential(RegisterSpec::new(), history),
        other => panic!("kind {other} is not covered by a specialized monitor"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Verdict equality over seeded recorded workloads, correct and faulty,
    /// for every kind with a specialized monitor. Workload values are
    /// globally unique per process, so correct collection histories exercise
    /// the unambiguous fast path rather than falling back.
    #[test]
    fn specialized_and_general_verdicts_agree_on_recorded_histories(
        seed in 0..10_000u64,
        kind_index in 0..COVERED_KINDS.len(),
        inject_faults in any::<bool>(),
    ) {
        let kind = COVERED_KINDS[kind_index];
        let history = record(kind, seed, inject_faults.then_some(5));
        differential_for(kind, &history);
    }
}

/// The acceptance path: unambiguous queue histories must actually be decided
/// by the specialized monitor (not merely agree with the general search via a
/// fallback), on both the member and the violation side.
#[test]
fn unambiguous_queue_histories_take_the_specialized_route() {
    for seed in 0..16u64 {
        for faulty_every in [None, Some(3)] {
            let history = record(ObjectKind::Queue, seed, faulty_every);
            let (verdict, route) = StrategyChecker::new(QueueSpec::new()).check_routed(&history);
            assert_eq!(
                route,
                Route::Specialized,
                "seed {seed} faulty {faulty_every:?} fell back ({verdict:?})"
            );
        }
    }
}

/// Duplicate inserted values break the unique-matching precondition: the
/// monitor must decline with the documented reason and the general search
/// must still decide correctly.
#[test]
fn ambiguous_histories_fall_back_to_the_general_search() {
    let p = ProcessId::new(0);

    // Linearizable: the same value enqueued twice, dequeued twice, FIFO.
    let mut b = HistoryBuilder::new();
    b.complete(p, queue::enqueue(7), OpValue::Bool(true));
    b.complete(p, queue::enqueue(7), OpValue::Bool(true));
    b.complete(p, queue::dequeue(), OpValue::Int(7));
    b.complete(p, queue::dequeue(), OpValue::Int(7));
    let member = b.build();
    let (verdict, route) = StrategyChecker::new(QueueSpec::new()).check_routed(&member);
    assert_eq!(route, Route::GeneralFallback(FallbackReason::Ambiguous));
    assert!(verdict.is_member());

    // Not linearizable: one push of 9, two pops of 9.
    let mut b = HistoryBuilder::new();
    b.complete(p, stack::push(9), OpValue::Bool(true));
    b.complete(p, stack::push(9), OpValue::Bool(true));
    b.complete(p, stack::pop(), OpValue::Int(9));
    b.complete(p, stack::pop(), OpValue::Int(9));
    b.complete(p, stack::pop(), OpValue::Int(9));
    let violating = b.build();
    let (verdict, route) = StrategyChecker::new(StackSpec::new()).check_routed(&violating);
    assert_eq!(route, Route::GeneralFallback(FallbackReason::Ambiguous));
    assert!(verdict.is_violation());
}

/// `SpecializedOnly` refuses to decide what the monitor declines — the
/// strategy benchmarks and the 10M-op acceptance test rely on this to prove
/// the fast path did the work.
#[test]
fn specialized_only_declines_instead_of_falling_back() {
    let p = ProcessId::new(0);
    let mut b = HistoryBuilder::new();
    b.complete(p, queue::enqueue(1), OpValue::Bool(true));
    b.complete(p, queue::enqueue(1), OpValue::Bool(true));
    let ambiguous = b.build();
    let checker =
        StrategyChecker::with_strategy(QueueSpec::new(), CheckerStrategy::SpecializedOnly);
    let (verdict, route) = checker.check_routed(&ambiguous);
    assert_eq!(route, Route::Declined(FallbackReason::Ambiguous));
    assert!(matches!(verdict, Verdict::Inconclusive));
}
