//! Golden-trace corpus regression tests.
//!
//! The files under `tests-integration/traces/` were generated once with
//! `linrv gen` at fixed seeds (one correct + one faulty trace per object kind)
//! and committed. They pin three things at once: the on-disk format (a codec
//! change that cannot read them is a format break and must bump the version),
//! the deterministic generator (regenerating with the same seed must reproduce
//! them) and the checker's verdicts (correct traces accept, faulty traces
//! reject).

use linrv_check::stream::check_events;
use linrv_history::History;
use linrv_spec::{
    ConsensusSpec, CounterSpec, ObjectKind, PriorityQueueSpec, QueueSpec, RegisterSpec, SetSpec,
    StackSpec,
};
use linrv_trace::{read_history, write_history, Provenance, TraceFormat, TraceReader};
use std::fs::File;
use std::path::PathBuf;

fn traces_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("traces")
}

/// Streams `reader` into the checker for `kind`; `true` means violation.
fn is_violation(kind: ObjectKind, reader: TraceReader<File>) -> bool {
    macro_rules! check {
        ($spec:expr) => {
            check_events($spec, reader)
                .expect("golden trace must be readable")
                .1
                .is_violation()
        };
    }
    match kind {
        ObjectKind::Queue => check!(QueueSpec::new()),
        ObjectKind::Stack => check!(StackSpec::new()),
        ObjectKind::Set => check!(SetSpec::new()),
        ObjectKind::PriorityQueue => check!(PriorityQueueSpec::new()),
        ObjectKind::Counter => check!(CounterSpec::new()),
        ObjectKind::Register => check!(RegisterSpec::new()),
        ObjectKind::Consensus => check!(ConsensusSpec::new()),
    }
}

#[test]
fn corpus_has_one_correct_and_one_faulty_trace_per_kind() {
    for kind in ObjectKind::ALL {
        for suffix in ["correct", "faulty"] {
            let path = traces_dir().join(format!("{kind}-{suffix}.jsonl"));
            assert!(path.is_file(), "missing golden trace {}", path.display());
        }
    }
}

#[test]
fn check_accepts_every_correct_and_rejects_every_faulty_golden_trace() {
    let mut seen = 0;
    for entry in std::fs::read_dir(traces_dir()).expect("traces dir") {
        let path = entry.expect("dir entry").path();
        if path.extension().and_then(|e| e.to_str()) != Some("jsonl") {
            continue;
        }
        seen += 1;
        let reader = TraceReader::new(File::open(&path).expect("open trace"))
            .unwrap_or_else(|err| panic!("{}: {err}", path.display()));
        let header = reader.header().clone();
        let name = path.file_stem().unwrap().to_string_lossy().to_string();
        // The filename suffix and the header's provenance must agree — a
        // mislabelled corpus entry would silently weaken this test.
        let expected_violation = match header.provenance {
            Provenance::Faulty => {
                assert!(name.ends_with("-faulty"), "{name}: header says faulty");
                true
            }
            Provenance::Correct => {
                assert!(name.ends_with("-correct"), "{name}: header says correct");
                false
            }
            Provenance::Unknown => panic!("{name}: golden traces must declare provenance"),
        };
        assert_eq!(header.seed, Some(42), "{name}: corpus uses seed 42");
        assert_eq!(
            is_violation(header.kind, reader),
            expected_violation,
            "{name}: checker verdict must match provenance"
        );
    }
    assert_eq!(seen, 14, "two traces per kind, seven kinds");
}

#[test]
fn golden_traces_convert_losslessly_between_both_encodings() {
    for entry in std::fs::read_dir(traces_dir()).expect("traces dir") {
        let path = entry.expect("dir entry").path();
        if path.extension().and_then(|e| e.to_str()) != Some("jsonl") {
            continue;
        }
        let original_bytes = std::fs::read(&path).expect("read trace");
        let (header, history) = read_history(original_bytes.as_slice())
            .unwrap_or_else(|err| panic!("{}: {err}", path.display()));

        // jsonl → binary → History: identical logical content.
        let mut binary = Vec::new();
        write_history(&mut binary, TraceFormat::Binary, &header, &history).unwrap();
        let (header2, history2) = read_history(binary.as_slice()).unwrap();
        assert_eq!(header2, header, "{}", path.display());
        assert_eq!(history2, history, "{}", path.display());
        assert!(
            binary.len() < original_bytes.len(),
            "{}: the binary encoding should be denser",
            path.display()
        );

        // binary → jsonl: byte-identical to the committed file (the encoder is
        // canonical, so conversion round-trips exactly).
        let mut jsonl = Vec::new();
        write_history(&mut jsonl, TraceFormat::Jsonl, &header2, &history2).unwrap();
        assert_eq!(
            jsonl,
            original_bytes,
            "{}: jsonl→binary→jsonl must be byte-identical",
            path.display()
        );
    }
}

#[test]
fn golden_histories_are_well_formed_and_complete() {
    for entry in std::fs::read_dir(traces_dir()).expect("traces dir") {
        let path = entry.expect("dir entry").path();
        if path.extension().and_then(|e| e.to_str()) != Some("jsonl") {
            continue;
        }
        let (header, history): (_, History) =
            read_history(File::open(&path).expect("open")).expect("read");
        assert!(history.is_well_formed(), "{}", path.display());
        assert_eq!(
            history.pending_operations().count(),
            0,
            "{}: scheduled runs complete every operation",
            path.display()
        );
        let processes = header.processes.expect("corpus records process count");
        assert_eq!(
            history.processes().len(),
            processes as usize,
            "{}",
            path.display()
        );
    }
}
