//! Forensics pipeline regression tests: golden explain reports and
//! certificates, plus property tests of the minimization contract.
//!
//! The `.explain.txt` / `.cert.json` files next to each violating golden
//! trace were produced once by `linrv_forensics::explain` and committed; the
//! tests here re-derive them and compare byte-for-byte, pinning the whole
//! pipeline (ddmin order, narrowing guard, diagnosis wording, JSON field
//! order) at once. After an intentional output change, regenerate them with
//! `LINRV_BLESS=1 cargo test -p tests-integration --test forensics`.

use linrv_forensics::{explain, is_locally_minimal, render_cert, render_report, Explanation};
use linrv_history::{History, HistoryBuilder, OpValue, ProcessId};
use linrv_spec::{ops::queue, ObjectKind};
use linrv_trace::read_history;
use proptest::prelude::*;
use std::fs::File;
use std::path::{Path, PathBuf};

fn traces_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("traces")
}

/// Compares `actual` against the committed golden file, or rewrites the
/// golden when `LINRV_BLESS` is set.
fn golden_compare(path: &Path, actual: &str) {
    if std::env::var_os("LINRV_BLESS").is_some() {
        std::fs::write(path, actual).expect("bless golden");
        return;
    }
    let expected = std::fs::read_to_string(path).unwrap_or_else(|_| {
        panic!(
            "missing golden file {}; generate it with LINRV_BLESS=1",
            path.display()
        )
    });
    assert_eq!(
        expected,
        actual,
        "golden mismatch at {} (re-bless with LINRV_BLESS=1 if intended)",
        path.display()
    );
}

fn load(path: &Path) -> (ObjectKind, History) {
    let file = File::open(path).unwrap_or_else(|err| panic!("open {}: {err}", path.display()));
    let (header, history) = read_history(file).expect("golden trace must parse");
    (header.kind, history)
}

fn explain_trace(path: &Path) -> Explanation {
    let (kind, history) = load(path);
    explain(kind, &history)
        .unwrap_or_else(|| panic!("{} must explain as a violation", path.display()))
}

/// Every violating golden trace (the per-kind faulty traces and the shrunk
/// fuzz witnesses) explains to the committed report and certificate bytes.
#[test]
fn golden_explanations_are_byte_pinned() {
    let mut paths: Vec<PathBuf> = Vec::new();
    for kind in ObjectKind::ALL {
        paths.push(traces_dir().join(format!("{kind}-faulty.jsonl")));
    }
    for entry in std::fs::read_dir(traces_dir().join("shrunk")).expect("shrunk dir") {
        let path = entry.expect("dir entry").path();
        if path.extension().and_then(|e| e.to_str()) == Some("jsonl") {
            paths.push(path);
        }
    }
    assert!(paths.len() >= 10, "7 faulty + >=3 shrunk traces expected");
    for path in paths {
        let explanation = explain_trace(&path);
        golden_compare(
            &path.with_extension("explain.txt"),
            &render_report(&explanation),
        );
        golden_compare(
            &path.with_extension("cert.json"),
            &render_cert(&explanation),
        );
    }
}

/// The explanation's witness keeps the violation and is locally minimal, and
/// kinds with a specialized monitor diagnose to a named bad pattern (the
/// general search attaches its frontier instead).
#[test]
fn golden_explanations_carry_minimal_witnesses_and_diagnoses() {
    for kind in ObjectKind::ALL {
        let path = traces_dir().join(format!("{kind}-faulty.jsonl"));
        let explanation = explain_trace(&path);
        assert!(
            is_locally_minimal(kind, &explanation.witness),
            "{kind}: witness must be locally minimal"
        );
        assert!(
            explanation.pattern.is_some() || explanation.frontier.is_some(),
            "{kind}: diagnosis must name a pattern or report the search frontier"
        );
        assert!(
            explanation.fix.is_some(),
            "{kind}: locally minimal witnesses always admit a single-edit fix"
        );
        let report = render_report(&explanation);
        assert!(report.starts_with(&format!("violation ({kind})")));
        let cert = render_cert(&explanation);
        assert!(cert.contains("\"schema\": \"linrv-cert/1\""));
    }
}

/// Shrunk fuzz witnesses are fixed points of the pipeline's minimizer: no
/// operation is removed when they are explained again.
#[test]
fn shrunk_witnesses_are_minimization_fixed_points() {
    for entry in std::fs::read_dir(traces_dir().join("shrunk")).expect("shrunk dir") {
        let path = entry.expect("dir entry").path();
        if path.extension().and_then(|e| e.to_str()) != Some("jsonl") {
            continue;
        }
        let explanation = explain_trace(&path);
        assert_eq!(
            explanation.removed,
            0,
            "{}: already minimal, nothing to remove",
            path.display()
        );
    }
}

/// A queue history with `noise` removable enqueue/dequeue pairs around one
/// seeded never-enqueued dequeue, spread over `processes` processes.
fn noisy_failing_queue(noise: usize, processes: u32, bug_value: i64) -> History {
    let mut b = HistoryBuilder::new();
    for i in 0..noise {
        let p = ProcessId::new(i as u32 % processes);
        b.complete(p, queue::enqueue(1000 + i as i64), OpValue::Bool(true));
        b.complete(p, queue::dequeue(), OpValue::Int(1000 + i as i64));
    }
    b.complete(ProcessId::new(0), queue::dequeue(), OpValue::Int(bug_value));
    b.build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The pipeline contract on arbitrary noisy inputs: the witness still
    /// violates, is locally minimal, and the whole explanation (witness
    /// bytes, report, certificate) is deterministic.
    #[test]
    fn explain_minimizes_deterministically(
        noise in 0usize..10,
        processes in 1u32..4,
        bug_value in -5i64..0,
    ) {
        let history = noisy_failing_queue(noise, processes, bug_value);
        let a = explain(ObjectKind::Queue, &history).expect("seeded violation");
        prop_assert!(explain(ObjectKind::Queue, &a.witness).is_some(),
            "witness must still violate");
        prop_assert!(is_locally_minimal(ObjectKind::Queue, &a.witness));
        prop_assert_eq!(a.pattern.as_ref().expect("specialized kind").name, "never-added");

        let b = explain(ObjectKind::Queue, &history).expect("seeded violation");
        prop_assert_eq!(a.witness.events(), b.witness.events());
        prop_assert_eq!(render_report(&a), render_report(&b));
        prop_assert_eq!(render_cert(&a), render_cert(&b));
    }

    /// Narrowing never un-violates: the narrowed witness's real-time order
    /// extends the shrunk one's (checked indirectly — the witness of the
    /// pipeline never has more events than the ddmin result).
    #[test]
    fn members_never_explain(ops in proptest::collection::vec(1i64..50, 1..12)) {
        let mut b = HistoryBuilder::new();
        let p = ProcessId::new(0);
        for &v in &ops {
            b.complete(p, queue::enqueue(v), OpValue::Bool(true));
        }
        for &v in &ops {
            b.complete(p, queue::dequeue(), OpValue::Int(v));
        }
        prop_assert!(explain(ObjectKind::Queue, &b.build()).is_none());
    }
}
