//! Cross-crate tests of the scenario engine: pool crash semantics, shrinking
//! properties and sweep determinism, plus replay of the committed shrunk
//! witnesses under `traces/shrunk/`.

use linrv::prelude::*;
use linrv::spec::typed::counter::Inc;
use linrv_pool::PoolBuilder;
use linrv_runtime::impls::AtomicCounter;
use linrv_scenario::shrink::{is_locally_minimal, shrink};
use linrv_scenario::{run_sweep, FuzzConfig};
use linrv_spec::ops::queue;
use linrv_spec::ObjectKind;
use linrv_trace::{read_history, Provenance};
use proptest::prelude::*;
use std::fs::File;
use std::path::PathBuf;

// ---------------------------------------------------------------------------
// Pool crash mid-operation (session killed between invocation and response).

/// Crashing a pool session between announce and commit must retire the slot,
/// leave the invocation pending, and not wedge or falsely fail the monitor:
/// every other session keeps verifying and the pool converges.
#[test]
fn pool_session_crash_mid_operation_converges_without_false_violation() {
    let pool = PoolBuilder::new(CounterSpec::new())
        .shards(2)
        .workers(1)
        .first_check(4)
        .build(|_| AtomicCounter::new());

    // Healthy traffic before the crash.
    for _ in 0..5 {
        let session = pool.session(0).unwrap();
        session.inc().unwrap();
    }

    // Crash: announce an inc (the invocation is recorded) and drop the staged
    // operation and its session without ever executing or committing.
    let victim = pool.session(0).unwrap();
    let staged = victim.stage(Inc);
    drop(staged);
    drop(victim);

    // The slot is retired, not recycled: new sessions still open and verify.
    for _ in 0..5 {
        let session = pool.session(0).unwrap();
        session.inc().unwrap();
    }
    pool.quiesce();

    let verdicts = pool.check_all();
    assert!(
        verdicts.values().all(|verdict| verdict.is_correct()),
        "a crashed session must not fail the object: {verdicts:?}"
    );
    let stats = pool.stats();
    assert_eq!(stats.violations, 0);
    // 10 complete operations (20 events) + the crashed, forever-pending
    // invocation.
    assert_eq!(stats.ingested, 21);
    assert_eq!(stats.processed, 21, "the pool must drain despite the crash");
    // GC stays sound: the checked prefix can never advance past the pending
    // invocation, so the events after the crash are all retained.
    assert!(stats.retained_events >= 11);
}

// ---------------------------------------------------------------------------
// Shrinking properties.

/// A violating queue history with `noise` removable enqueue/dequeue pairs
/// around one seeded bug (a dequeue of a never-enqueued value).
fn noisy_failing_history(noise: usize) -> linrv::raw::History {
    let mut builder = linrv::raw::HistoryBuilder::new();
    let p = linrv::raw::ProcessId::new(0);
    for i in 0..noise {
        builder.complete(
            p,
            queue::enqueue(500 + i as i64),
            linrv::raw::OpValue::Bool(true),
        );
        builder.complete(
            p,
            queue::dequeue(),
            linrv::raw::OpValue::Int(500 + i as i64),
        );
    }
    builder.complete(p, queue::dequeue(), linrv::raw::OpValue::Int(-7));
    builder.build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The shrunk trace still fails, and it is locally minimal: removing any
    /// single complete pair of the witness makes it pass.
    #[test]
    fn shrunk_traces_still_fail_and_are_locally_minimal(noise in 0usize..16) {
        let failing = noisy_failing_history(noise);
        let outcome = shrink(ObjectKind::Queue, &failing);
        prop_assert!(linrv_scenario::check_history(ObjectKind::Queue, &outcome.history)
            .is_violation());
        prop_assert!(is_locally_minimal(ObjectKind::Queue, &outcome.history));
        prop_assert_eq!(outcome.history.complete_operations().count(), 1);
        prop_assert_eq!(outcome.removed, 2 * noise);
    }

    /// Shrinking is a pure function of its input.
    #[test]
    fn shrinking_is_deterministic_across_runs(noise in 0usize..16, reps in 2usize..4) {
        let failing = noisy_failing_history(noise);
        let first = shrink(ObjectKind::Queue, &failing);
        for _ in 1..reps {
            let again = shrink(ObjectKind::Queue, &failing);
            prop_assert_eq!(again.history.events(), first.history.events());
            prop_assert_eq!(again.checks, first.checks);
        }
    }

    /// Fuzz sweeps are bit-for-bit deterministic per seed: same seed, same
    /// report (modulo wall-clock timings, the one non-deterministic field)
    /// and byte-identical corpus files in a fresh directory.
    #[test]
    fn fuzz_sweeps_are_byte_identical_per_seed(seed in any::<u64>()) {
        let base = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(format!("sweep-{seed:016x}"));
        let dir_a = base.join("a");
        let dir_b = base.join("b");
        let config = FuzzConfig::quick(seed).with_scenarios(6);
        let report_a = run_sweep(&config.clone().with_corpus(&dir_a)).unwrap();
        let report_b = run_sweep(&config.with_corpus(&dir_b)).unwrap();
        let strip_timings = |report: &str| -> String {
            report
                .lines()
                .filter(|line| !line.contains(" ops/sec"))
                .map(|line| line.rfind(" in ").map_or(line, |at| &line[..at]).to_owned())
                .collect::<Vec<_>>()
                .join("\n")
        };
        prop_assert_eq!(strip_timings(&report_a.render()), strip_timings(&report_b.render()));
        let mut names_a: Vec<_> = std::fs::read_dir(&dir_a)
            .unwrap()
            .map(|entry| entry.unwrap().file_name())
            .collect();
        names_a.sort();
        for name in &names_a {
            let bytes_a = std::fs::read(dir_a.join(name)).unwrap();
            let bytes_b = std::fs::read(dir_b.join(name)).unwrap();
            prop_assert_eq!(&bytes_a, &bytes_b, "corpus file {:?} differs", name);
        }
        std::fs::remove_dir_all(&base).unwrap();
    }
}

// ---------------------------------------------------------------------------
// Committed shrunk witnesses.

fn shrunk_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("traces")
        .join("shrunk")
}

/// Every committed shrunk trace must still be a violation of its kind and
/// still be locally minimal — the corpus pins both the fuzzing pipeline's
/// output format and the shrinker's guarantee.
#[test]
fn committed_shrunk_witnesses_replay_as_minimal_violations() {
    let mut seen = 0;
    for entry in std::fs::read_dir(shrunk_dir()).expect("traces/shrunk dir") {
        let path = entry.expect("dir entry").path();
        if path.extension().and_then(|e| e.to_str()) != Some("jsonl") {
            continue;
        }
        seen += 1;
        let (header, history) = read_history(File::open(&path).expect("open"))
            .unwrap_or_else(|err| panic!("{}: {err}", path.display()));
        assert_eq!(header.provenance, Provenance::Faulty, "{}", path.display());
        assert!(
            header.scenario.is_some(),
            "{}: shrunk traces record their scenario",
            path.display()
        );
        assert!(
            linrv_scenario::check_history(header.kind, &history).is_violation(),
            "{}: must still violate",
            path.display()
        );
        assert!(
            is_locally_minimal(header.kind, &history),
            "{}: must still be locally minimal",
            path.display()
        );
    }
    assert!(
        seen >= 2,
        "expected at least two committed shrunk witnesses"
    );
}
