//! End-to-end integration tests: black-box implementations → DRV transform →
//! predictive verifier / self-enforced wrappers, across object kinds.

use linrv_check::{GenLinObject, LinSpec};
use linrv_core::decoupled::decoupled;
use linrv_core::drv::Drv;
use linrv_core::enforce::SelfEnforced;
use linrv_core::verifier::{run_verified, Verifier};
use linrv_history::{OpValue, ProcessId};
use linrv_runtime::faulty::{DuplicatingStack, LossyQueue, StutteringCounter};
use linrv_runtime::impls::{AtomicCounter, CasConsensus, MsQueue, SpecObject, TreiberStack};
use linrv_runtime::{ConcurrentObject, Workload, WorkloadKind};
use linrv_spec::ops;
use linrv_spec::{CounterSpec, PriorityQueueSpec, QueueSpec, SetSpec, StackSpec};
use std::sync::Arc;

fn p(i: u32) -> ProcessId {
    ProcessId::new(i)
}

/// Theorem 8.2(2), first half: when `A` is correct, the self-enforced implementation is
/// correct and never returns ERROR — across several object kinds and workloads.
#[test]
fn self_enforced_correct_objects_never_error() {
    // Queue.
    let queue = SelfEnforced::new(MsQueue::new(), LinSpec::new(QueueSpec::new()), 2);
    let workload = Workload::new(WorkloadKind::Queue, 101);
    for (i, op) in workload.operations_for(0, 30).iter().enumerate() {
        let r = queue.apply_verified(p((i % 2) as u32), op);
        assert!(r.is_verified());
    }
    assert!(queue.certificate().is_correct());

    // Stack.
    let stack = SelfEnforced::new(TreiberStack::new(), LinSpec::new(StackSpec::new()), 2);
    let workload = Workload::new(WorkloadKind::Stack, 102);
    for (i, op) in workload.operations_for(1, 30).iter().enumerate() {
        assert!(stack.apply_verified(p((i % 2) as u32), op).is_verified());
    }

    // Counter.
    let counter = SelfEnforced::new(AtomicCounter::new(), LinSpec::new(CounterSpec::new()), 2);
    for _ in 0..10 {
        assert!(counter
            .apply_verified(p(0), &ops::counter::inc())
            .is_verified());
        assert!(counter
            .apply_verified(p(1), &ops::counter::read())
            .is_verified());
    }

    // Set (lock-based universal construction).
    let set = SelfEnforced::new(
        SpecObject::new(SetSpec::new()),
        LinSpec::new(SetSpec::new()),
        2,
    );
    let workload = Workload::new(WorkloadKind::Set, 103);
    for (i, op) in workload.operations_for(0, 30).iter().enumerate() {
        assert!(set.apply_verified(p((i % 2) as u32), op).is_verified());
    }

    // Priority queue (lock-based universal construction).
    let pq = SelfEnforced::new(
        SpecObject::new(PriorityQueueSpec::new()),
        LinSpec::new(PriorityQueueSpec::new()),
        2,
    );
    let workload = Workload::new(WorkloadKind::PriorityQueue, 104);
    for (i, op) in workload.operations_for(0, 30).iter().enumerate() {
        assert!(pq.apply_verified(p((i % 2) as u32), op).is_verified());
    }
}

/// Theorem 8.2(2), second half: when `A` is incorrect, eventually operations return
/// ERROR together with a witness for `A*`, and the certificate records the violation.
#[test]
fn self_enforced_faulty_objects_eventually_error_with_witnesses() {
    type FaultyCase = (
        Box<dyn ConcurrentObject>,
        Box<dyn GenLinObject>,
        WorkloadKind,
    );
    let cases: Vec<FaultyCase> = vec![
        (
            Box::new(LossyQueue::new(3)),
            Box::new(LinSpec::new(QueueSpec::new())),
            WorkloadKind::Queue,
        ),
        (
            Box::new(DuplicatingStack::new(3)),
            Box::new(LinSpec::new(StackSpec::new())),
            WorkloadKind::Stack,
        ),
        (
            Box::new(StutteringCounter::new(3)),
            Box::new(LinSpec::new(CounterSpec::new())),
            WorkloadKind::Counter,
        ),
    ];
    for (object, spec, kind) in cases {
        let name = object.name();
        let enforced = SelfEnforced::new(object, spec, 1);
        let workload = Workload::new(kind, 55);
        let mut saw_error = false;
        for op in workload.operations_for(0, 40) {
            let r = enforced.apply_verified(p(0), &op);
            if !r.is_verified() {
                saw_error = true;
                assert_eq!(r.value, OpValue::Error);
                assert!(r.witness.is_some());
            }
        }
        assert!(saw_error, "{name}: violation never reported");
        assert!(
            !enforced.certificate().is_correct(),
            "{name}: certificate must record the violation"
        );
    }
}

/// Consensus: the verifier checks validity through real-time order — a correct CAS
/// consensus never errors.
#[test]
fn consensus_decisions_are_verified() {
    let enforced = SelfEnforced::new(
        CasConsensus::new(),
        LinSpec::new(linrv_spec::ConsensusSpec::new()),
        3,
    );
    let enforced = Arc::new(enforced);
    let ok = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for t in 0..3u32 {
            let enforced = Arc::clone(&enforced);
            handles.push(scope.spawn(move || {
                enforced
                    .apply_verified(p(t), &ops::consensus::decide(i64::from(t) + 10))
                    .is_verified()
            }));
        }
        handles.into_iter().all(|h| h.join().unwrap())
    });
    assert!(ok, "correct consensus was flagged");
    assert!(enforced.certificate().is_correct());
}

/// The predictive verifier driven as in Figure 10, concurrently, over a correct and an
/// incorrect implementation (soundness + completeness at system level).
#[test]
fn verifier_full_loop_concurrent_soundness_and_sequential_completeness() {
    // Soundness: 3 threads over a correct queue.
    let n = 3;
    let drv = Drv::new(MsQueue::new(), n);
    let verifier = Verifier::new(LinSpec::new(QueueSpec::new()), n);
    let workload = Workload::new(WorkloadKind::Queue, 77);
    let run = run_verified(&drv, &verifier, |i| workload.operations_for(i, 25));
    assert!(run.error_free());
    assert_eq!(run.operations, 75);

    // Completeness: a lossy queue driven by one process errors and stays in error.
    let drv = Drv::new(LossyQueue::new(2), 1);
    let verifier = Verifier::new(LinSpec::new(QueueSpec::new()), 1);
    let ops: Vec<_> = (0..8)
        .map(ops::queue::enqueue)
        .chain((0..8).map(|_| ops::queue::dequeue()))
        .collect();
    let run = run_verified(&drv, &verifier, |_| ops.clone());
    assert!(!run.error_free());
    assert!(!run.witnesses.is_empty());
    for witness in &run.witnesses {
        assert!(!LinSpec::new(QueueSpec::new()).contains(witness));
    }
}

/// Decoupled producers/verifier (Figure 12) over correct and faulty queues.
#[test]
fn decoupled_roles_split_production_and_verification() {
    let (producer, verifier) = decoupled(MsQueue::new(), LinSpec::new(QueueSpec::new()), 2);
    producer.apply(p(0), &ops::queue::enqueue(1));
    producer.apply(p(1), &ops::queue::enqueue(2));
    assert_eq!(
        producer.apply(p(0), &ops::queue::dequeue()),
        OpValue::Int(1)
    );
    assert!(verifier.check_once().is_ok());

    let (producer, verifier) = decoupled(LossyQueue::new(2), LinSpec::new(QueueSpec::new()), 1);
    for i in 0..8 {
        producer.apply(p(0), &ops::queue::enqueue(i));
    }
    let mut drained = 0;
    while let OpValue::Int(_) = producer.apply(p(0), &ops::queue::dequeue()) {
        drained += 1;
    }
    assert!(drained < 8);
    assert!(!verifier.check_once().is_ok());
}

/// The verifier works with any snapshot implementation, including the blocking oracle
/// (modularity of the construction with respect to its base objects). The facade
/// exposes the choice as a builder knob; the raw API allows fully custom wiring.
#[test]
fn verifier_is_generic_over_the_snapshot_implementation() {
    use linrv::prelude::*;

    for backend in [
        SnapshotBackend::Afek,
        SnapshotBackend::DoubleCollect,
        SnapshotBackend::Locked,
    ] {
        let monitor = Monitor::builder(QueueSpec::new())
            .processes(2)
            .snapshot(backend)
            .build(MsQueue::new());
        let producer = monitor.register().unwrap();
        let consumer = monitor.register().unwrap();
        producer.enqueue(9).unwrap();
        assert_eq!(consumer.dequeue().unwrap(), Some(9));
        assert!(monitor.certificate().is_correct(), "{backend:?}");
    }

    // Raw escape hatch: mix-and-match snapshot instances across the two arrays.
    use linrv_core::view::{TupleSet, View};
    use linrv_snapshot::{DoubleCollectSnapshot, LockedSnapshot, Snapshot};

    let announcements: Arc<dyn Snapshot<View>> = Arc::new(LockedSnapshot::new(2, View::new()));
    let results: Arc<dyn Snapshot<TupleSet>> =
        Arc::new(DoubleCollectSnapshot::new(2, TupleSet::new()));
    let enforced = SelfEnforced::with_snapshots(
        MsQueue::new(),
        LinSpec::new(QueueSpec::new()),
        announcements,
        results,
    );
    assert!(enforced
        .apply_verified(p(0), &ops::queue::enqueue(9))
        .is_verified());
    assert!(enforced
        .apply_verified(p(1), &ops::queue::dequeue())
        .is_verified());
    assert!(enforced.certificate().is_correct());
}

/// Impossibility (Theorem 5.1) and its predictive variant (Theorem A.1): the executable
/// demo exhibits indistinguishable executions with opposite verdicts.
#[test]
fn impossibility_demo_holds() {
    let demo = linrv_core::impossibility::theorem51_demo();
    assert!(demo.executions_are_indistinguishable());
    assert!(demo.e_violates_linearizability());
    assert!(demo.f_is_linearizable());
}
