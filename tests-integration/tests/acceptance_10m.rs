//! The tentpole acceptance test: a 10-million-operation unambiguous queue
//! history must be decided in under a minute — and by the specialized
//! log-linear monitor alone, not the general search.
//!
//! Ignored by default because it allocates a 20-million-event history; run it
//! in release mode, where the budget holds comfortably:
//!
//! ```text
//! cargo test --release -p tests-integration --test acceptance_10m -- --ignored
//! ```

use linrv_check::{CheckerStrategy, Route, StrategyChecker};
use linrv_history::{History, HistoryBuilder, OpValue, ProcessId};
use linrv_spec::ops::queue;
use linrv_spec::QueueSpec;
use std::time::Instant;

/// Two overlapping process lanes: every enqueue overlaps its dequeue, values
/// are unique, FIFO. The monitor sees real concurrency, not a sequential
/// fast path.
fn unambiguous_queue_history(operations: usize) -> History {
    let mut b = HistoryBuilder::new();
    let producer = ProcessId::new(0);
    let consumer = ProcessId::new(1);
    for value in 0..(operations / 2) as i64 {
        let enq = b.invoke(producer, queue::enqueue(value));
        let deq = b.invoke(consumer, queue::dequeue());
        b.respond(enq, OpValue::Bool(true));
        b.respond(deq, OpValue::Int(value));
    }
    b.build()
}

#[test]
#[ignore = "10M-operation stress: run in release mode"]
fn ten_million_op_queue_trace_checks_in_under_a_minute() {
    const OPERATIONS: usize = 10_000_000;
    let history = unambiguous_queue_history(OPERATIONS);
    assert_eq!(history.operations().len(), OPERATIONS);

    // `SpecializedOnly` cannot fall back: a decision here *is* proof the
    // log-linear queue monitor did the work.
    let checker =
        StrategyChecker::with_strategy(QueueSpec::new(), CheckerStrategy::SpecializedOnly);
    let start = Instant::now();
    let (verdict, route) = checker.check_routed(&history);
    let elapsed = start.elapsed();

    assert_eq!(route, Route::Specialized, "fell back: {verdict:?}");
    assert!(verdict.is_member(), "verdict: {verdict:?}");
    assert!(
        elapsed.as_secs() < 60,
        "checked {OPERATIONS} operations in {elapsed:?}, budget is 60s"
    );
}
