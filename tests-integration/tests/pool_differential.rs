//! Differential tests for `linrv-pool`: on seeded multi-object workloads the
//! pool's per-object verdicts must equal the verdicts of independent
//! single-object [`Monitor`]s driven with the same operations — correct and
//! fault-injected, across every snapshot backend — and the scale acceptance
//! run must show bounded memory via checked-prefix GC.

use linrv::prelude::*;
use linrv::runtime::{faulty, impls, ConcurrentObject, Workload, WorkloadKind};
use linrv::spec::ObjectKind;
use linrv_pool::PoolBuilder;
use linrv_spec::{CounterSpec, QueueSpec, RegisterSpec, TypedObject};
use proptest::prelude::*;
use std::collections::BTreeMap;

const KINDS: [ObjectKind; 3] = [ObjectKind::Counter, ObjectKind::Register, ObjectKind::Queue];

const BACKENDS: [SnapshotBackend; 3] = [
    SnapshotBackend::Afek,
    SnapshotBackend::DoubleCollect,
    SnapshotBackend::Locked,
];

/// Builds the object instance for `id`: the kind's canonical correct
/// implementation, or its deterministic fault injector for the chosen bad ids.
/// Both the pool and the reference monitors call this, so the two runs see
/// byte-identical implementation behaviour under identical op sequences.
fn build_object(kind: ObjectKind, id: u64, bad: &[u64]) -> Box<dyn ConcurrentObject> {
    if bad.contains(&id) {
        faulty::faulty_object(kind, 3)
    } else {
        impls::correct_object(kind)
    }
}

/// Drives `objects` objects through a pool and through independent single
/// monitors with identical seeded op sequences (sequentially, so responses are
/// deterministic), then asserts the per-object verdicts agree bit-for-bit.
fn differential_pool<S>(spec: S, kind: ObjectKind, seed: u64, backend: SnapshotBackend, bad: &[u64])
where
    S: TypedObject + Copy + Send + Sync + 'static,
{
    let objects: u64 = 6;
    let ops_per_object = 10usize;
    let bad_owned = bad.to_vec();
    let pool = PoolBuilder::new(spec)
        .shards(3)
        .workers(2)
        .sessions_per_object(1)
        .snapshot(backend)
        .first_check(4)
        .build(move |id| build_object(kind, id, &bad_owned));

    let mut expected = BTreeMap::new();
    for id in 0..objects {
        let operations = Workload::new(WorkloadKind::for_object(kind), seed ^ id)
            .operations_for(0, ops_per_object);
        // Pool run.
        let session = pool.session(id).expect("first session of the object");
        for op in &operations {
            let _ = session.apply_raw(op);
        }
        drop(session);
        // Reference run: an independent single-object monitor over an
        // identically-built implementation instance.
        let monitor = Monitor::builder(spec)
            .processes(1)
            .snapshot(backend)
            .mode(Mode::Observe)
            .build(build_object(kind, id, bad));
        let reference = monitor.register().expect("one slot");
        for op in &operations {
            let _ = reference.apply_raw(op);
        }
        drop(reference);
        expected.insert(id, monitor.check().is_correct());
    }

    let verdicts = pool.check_all();
    assert_eq!(verdicts.len(), objects as usize);
    for id in 0..objects {
        assert_eq!(
            verdicts[&id].is_correct(),
            expected[&id],
            "pool and single-monitor verdicts diverge for object {id} \
             (kind {kind}, seed {seed}, backend {backend:?}, bad {bad:?})"
        );
        if let Some(violation) = verdicts[&id].violation() {
            assert_eq!(violation.object, id, "violations carry their object id");
            assert!(
                !violation.witness.is_empty(),
                "violations carry a witness prefix"
            );
        }
    }
}

fn differential_for(kind: ObjectKind, seed: u64, backend: SnapshotBackend, bad: &[u64]) {
    match kind {
        ObjectKind::Counter => differential_pool(CounterSpec::new(), kind, seed, backend, bad),
        ObjectKind::Register => differential_pool(RegisterSpec::new(), kind, seed, backend, bad),
        ObjectKind::Queue => differential_pool(QueueSpec::new(), kind, seed, backend, bad),
        other => panic!("kind {other} is not part of the pool differential"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Per-object pool verdicts equal independent single-monitor verdicts on
    /// seeded multi-object workloads, with and without injected faults,
    /// across all three snapshot backends.
    #[test]
    fn pool_verdicts_match_single_monitors(
        seed in 0..10_000u64,
        kind_index in 0..KINDS.len(),
        backend_index in 0..BACKENDS.len(),
        inject_faults in any::<bool>(),
    ) {
        let kind = KINDS[kind_index];
        let backend = BACKENDS[backend_index];
        let bad: Vec<u64> = if inject_faults {
            vec![seed % 6, (seed / 7) % 6]
        } else {
            Vec::new()
        };
        differential_for(kind, seed, backend, &bad);
    }
}

/// The PR's acceptance run: a seeded load generator with 64 concurrent clients
/// over 10k objects completes with bounded per-object memory (checked-prefix
/// GC observable through the stats API), the injected faulty object is
/// reported with its id and violating prefix, and every other object verifies
/// clean.
///
/// Ignored by default (it spawns 64 threads and builds 10k monitors); run with
/// `cargo test -p tests-integration --release -- --ignored acceptance_pool`.
#[test]
#[ignore = "acceptance-scale run; invoke explicitly with --ignored"]
fn acceptance_pool_64_clients_10k_objects() {
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    const CLIENTS: u64 = 64;
    const OBJECTS: u64 = 10_000;
    const OPS_PER_CLIENT: u64 = 400;
    const SEED: u64 = 42;
    let bad = OBJECTS / 2;

    let pool = Arc::new(
        PoolBuilder::new(CounterSpec::new())
            .shards(16)
            .workers(4)
            .sessions_per_object(8)
            .snapshot(SnapshotBackend::Locked)
            .first_check(8)
            .build(move |id| -> Box<dyn ConcurrentObject> {
                if id == bad {
                    // Stutters every 3rd apply: duplicated fetch-and-increment
                    // responses are never linearizable.
                    faulty::faulty_object(ObjectKind::Counter, 3)
                } else {
                    impls::correct_object(ObjectKind::Counter)
                }
            }),
    );

    // A dedicated sequentially-hammered object: strictly alternating history,
    // so checked-prefix GC must reclaim essentially all of it. This is the
    // deterministic bounded-memory witness. The op count is moderate because
    // the DRV wrapper's announce views grow with an object's total operation
    // count (Figure 7 writes ever-growing sets; see Section 9.1 and
    // `linrv_core::bounded`), which is independent of the pool's history GC.
    let seq_key = OBJECTS - 1;
    const SEQ_OPS: u64 = 300;

    let contended = Arc::new(AtomicU64::new(0));
    std::thread::scope(|scope| {
        {
            let pool = Arc::clone(&pool);
            scope.spawn(move || {
                let session = pool.session(seq_key).expect("dedicated slot");
                for _ in 0..SEQ_OPS {
                    let _ = session.inc();
                }
            });
        }
        for client in 0..CLIENTS {
            let pool = Arc::clone(&pool);
            let contended = Arc::clone(&contended);
            scope.spawn(move || {
                // splitmix64 per client: the whole load is a function of SEED.
                let mut state = SEED ^ client.wrapping_mul(0x0DDB_1A5E_5BAD_5EED);
                let mut next = move || {
                    state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
                    let mut z = state;
                    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                    z ^ (z >> 31)
                };
                for _ in 0..OPS_PER_CLIENT {
                    // Zipf-ish mix: a quarter of the traffic goes to 512 hot
                    // objects so checks and GC trigger mid-run, the rest
                    // spreads across all 10k. The hot set is wide enough that
                    // per-object concurrent histories stay short — long
                    // concurrent tails would push incremental checks into the
                    // general search and throttle ingestion.
                    // (The random spread stays off the dedicated sequential
                    // key so its history remains strictly alternating.)
                    let key = if next() % 4 == 0 {
                        next() % 512
                    } else {
                        next() % (OBJECTS - 1)
                    };
                    let Ok(session) = pool.session(key) else {
                        contended.fetch_add(1, Ordering::Relaxed);
                        continue;
                    };
                    let _ = session.inc();
                }
            });
        }
    });
    pool.quiesce();

    // GC must be observable mid-run, before any final check: the hot objects
    // and the dedicated sequential object crossed the incremental check
    // schedule many times.
    let mid = pool.stats();
    assert!(
        mid.gced_events > 0,
        "no GC happened during the run: {mid:?}"
    );
    let seq_mid = pool
        .object_stats(seq_key)
        .expect("sequential object exists");
    assert!(
        seq_mid.gced_events > 0,
        "the sequential object was never GC'd mid-run: {seq_mid:?}"
    );

    // A short sequential audit guarantees the faulty object served enough
    // applies to stutter, whatever the random load did.
    {
        let session = pool.session(bad).expect("audit slot");
        for _ in 0..8 {
            let _ = session.inc();
        }
    }

    let verdicts = pool.check_all();
    assert!(verdicts.len() > 1_000, "the load must touch many objects");
    let flagged: Vec<u64> = verdicts
        .iter()
        .filter(|(_, verdict)| !verdict.is_correct())
        .map(|(id, _)| *id)
        .collect();
    assert_eq!(
        flagged,
        vec![bad],
        "exactly the injected object is reported"
    );
    let violation = verdicts[&bad].violation().expect("witness");
    assert_eq!(violation.object, bad);
    assert!(
        !violation.witness.is_empty(),
        "the violating prefix is attached"
    );

    // Per-object bounded memory after the final sweep: the sequential
    // object's fully-checked alternating history is reclaimed almost
    // entirely — retention is a small constant, not O(ops).
    let end = pool.stats();
    assert!(end.gced_events >= mid.gced_events);
    let seq = pool
        .object_stats(seq_key)
        .expect("sequential object exists");
    assert!(
        seq.gced_events >= 2 * SEQ_OPS - 8,
        "the sequential history was not reclaimed: {seq:?}"
    );
    assert!(
        seq.retained_events < 8,
        "per-object memory is not bounded: {seq:?}"
    );
    assert!(!seq.violating);
    let audit = pool.object_stats(bad).expect("audited object exists");
    assert!(audit.violating);
    eprintln!(
        "acceptance: {} objects, {} events ingested, {} GC'd, {} retained, {} checks, \
         {} steals, {} contended sessions",
        end.objects,
        end.ingested,
        end.gced_events,
        end.retained_events,
        end.checks,
        end.steals,
        contended.load(Ordering::Relaxed),
    );
}
