//! Offline stand-in for `crossbeam` (see `vendor/README.md`).
//!
//! Only the `epoch` module is provided, with the API surface the lock-free
//! structures in `linrv-runtime` use. The one behavioural deviation:
//! [`epoch::Guard::defer_destroy`] intentionally *leaks* the retired node
//! instead of reclaiming it. That is memory-safe under any interleaving
//! (nothing is ever freed while a reference can exist) at the cost of
//! unbounded retirement — acceptable for tests and short benchmark runs.

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod epoch {
    //! Epoch-shaped pointer types over plain atomics, with leak-based
    //! "reclamation".

    use std::fmt;
    use std::marker::PhantomData;
    use std::ops::{Deref, DerefMut};
    use std::sync::atomic::{AtomicPtr, Ordering};

    /// A guard that in the real crate pins the current epoch. Here it only
    /// scopes the lifetime of [`Shared`] pointers.
    #[derive(Debug)]
    pub struct Guard {
        _private: (),
    }

    /// Pins the "epoch", returning a guard that [`Shared`] loads borrow from.
    pub fn pin() -> Guard {
        Guard { _private: () }
    }

    /// Returns a guard usable without pinning.
    ///
    /// # Safety
    ///
    /// The caller must guarantee exclusive access to the data structure (e.g.
    /// inside `new` before sharing, or inside `Drop`), as the returned guard
    /// provides no protection against concurrent reclamation.
    pub unsafe fn unprotected() -> &'static Guard {
        static UNPROTECTED: Guard = Guard { _private: () };
        &UNPROTECTED
    }

    impl Guard {
        /// Retires the node behind `ptr`.
        ///
        /// Stub behaviour: the node is leaked rather than destroyed, which is
        /// trivially safe (see the crate docs for the trade-off).
        ///
        /// # Safety
        ///
        /// As in the real crate: `ptr` must have been unlinked from the data
        /// structure so no thread can acquire a *new* reference to it.
        pub unsafe fn defer_destroy<T>(&self, ptr: Shared<'_, T>) {
            let _ = ptr;
        }
    }

    /// Types that can be converted into a raw pointer and back; implemented by
    /// [`Owned`] and [`Shared`].
    pub trait Pointer<T> {
        /// Consumes the pointer, returning its raw address.
        fn into_ptr(self) -> *mut T;

        /// Rebuilds the pointer from a raw address.
        ///
        /// # Safety
        ///
        /// `raw` must have originated from `into_ptr` of the same impl.
        unsafe fn from_ptr(raw: *mut T) -> Self;
    }

    /// An owned, heap-allocated node (a `Box` in disguise).
    pub struct Owned<T> {
        raw: *mut T,
    }

    impl<T> Owned<T> {
        /// Allocates `value` on the heap.
        pub fn new(value: T) -> Self {
            Owned {
                raw: Box::into_raw(Box::new(value)),
            }
        }

        /// Converts the owned node into a [`Shared`] tied to `_guard`,
        /// relinquishing ownership to the data structure.
        pub fn into_shared<'g>(self, _guard: &'g Guard) -> Shared<'g, T> {
            Shared {
                raw: self.into_ptr(),
                _marker: PhantomData,
            }
        }
    }

    impl<T> Drop for Owned<T> {
        fn drop(&mut self) {
            // SAFETY: an `Owned` uniquely owns its allocation; it is only
            // dropped when it was never converted into a `Shared`.
            unsafe { drop(Box::from_raw(self.raw)) }
        }
    }

    impl<T> Deref for Owned<T> {
        type Target = T;

        fn deref(&self) -> &T {
            // SAFETY: `raw` is a live, uniquely owned allocation.
            unsafe { &*self.raw }
        }
    }

    impl<T> DerefMut for Owned<T> {
        fn deref_mut(&mut self) -> &mut T {
            // SAFETY: `raw` is a live, uniquely owned allocation.
            unsafe { &mut *self.raw }
        }
    }

    impl<T> Pointer<T> for Owned<T> {
        fn into_ptr(self) -> *mut T {
            let raw = self.raw;
            std::mem::forget(self);
            raw
        }

        unsafe fn from_ptr(raw: *mut T) -> Self {
            Owned { raw }
        }
    }

    impl<T: fmt::Debug> fmt::Debug for Owned<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.debug_tuple("Owned").field(&**self).finish()
        }
    }

    /// A pointer to a node that is (possibly) shared with other threads, valid
    /// for the lifetime of the guard it was loaded under.
    pub struct Shared<'g, T> {
        raw: *mut T,
        _marker: PhantomData<&'g T>,
    }

    impl<T> Clone for Shared<'_, T> {
        fn clone(&self) -> Self {
            *self
        }
    }

    impl<T> Copy for Shared<'_, T> {}

    impl<T> PartialEq for Shared<'_, T> {
        fn eq(&self, other: &Self) -> bool {
            std::ptr::eq(self.raw, other.raw)
        }
    }

    impl<T> Eq for Shared<'_, T> {}

    impl<'g, T> Shared<'g, T> {
        /// The null pointer.
        pub fn null() -> Self {
            Shared {
                raw: std::ptr::null_mut(),
                _marker: PhantomData,
            }
        }

        /// Whether this pointer is null.
        pub fn is_null(&self) -> bool {
            self.raw.is_null()
        }

        /// Dereferences the pointer.
        ///
        /// # Safety
        ///
        /// The pointer must be non-null and the node must not have been
        /// destroyed (guaranteed here while its guard is alive, since the stub
        /// never destroys retired nodes).
        pub unsafe fn deref(&self) -> &'g T {
            // SAFETY: per the contract above, the pointer is non-null and the
            // node is alive for the guard lifetime `'g`.
            unsafe { &*self.raw }
        }

        /// Converts to a reference, returning `None` for null.
        ///
        /// # Safety
        ///
        /// As for [`Shared::deref`], for non-null pointers.
        pub unsafe fn as_ref(&self) -> Option<&'g T> {
            // SAFETY: per the contract above, non-null pointers reference nodes
            // that stay alive for the guard lifetime `'g`.
            unsafe { self.raw.as_ref() }
        }

        /// Takes back ownership of the node.
        ///
        /// # Safety
        ///
        /// The caller must be the unique owner of the node (e.g. during
        /// `Drop` of the whole data structure).
        pub unsafe fn into_owned(self) -> Owned<T> {
            debug_assert!(!self.raw.is_null());
            Owned { raw: self.raw }
        }
    }

    impl<T> Pointer<T> for Shared<'_, T> {
        fn into_ptr(self) -> *mut T {
            self.raw
        }

        unsafe fn from_ptr(raw: *mut T) -> Self {
            Shared {
                raw,
                _marker: PhantomData,
            }
        }
    }

    impl<T> fmt::Debug for Shared<'_, T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.debug_tuple("Shared").field(&self.raw).finish()
        }
    }

    /// The error of a failed [`Atomic::compare_exchange`].
    pub struct CompareExchangeError<'g, T, P: Pointer<T>> {
        /// The value the atomic actually held.
        pub current: Shared<'g, T>,
        /// The proposed new pointer, returned to the caller.
        pub new: P,
    }

    /// An atomic pointer to a node.
    pub struct Atomic<T> {
        raw: AtomicPtr<T>,
        // Suppress the auto Send/Sync that AtomicPtr alone would grant: any
        // thread holding the Atomic may deref or drop a T through it, so the
        // explicit impls below require T: Send + Sync like real crossbeam.
        _marker: PhantomData<*mut T>,
    }

    unsafe impl<T: Send + Sync> Send for Atomic<T> {}
    unsafe impl<T: Send + Sync> Sync for Atomic<T> {}

    impl<T> Atomic<T> {
        /// Creates a null atomic pointer.
        pub fn null() -> Self {
            Atomic {
                raw: AtomicPtr::new(std::ptr::null_mut()),
                _marker: PhantomData,
            }
        }

        /// Allocates `value` and stores a pointer to it.
        pub fn new(value: T) -> Self {
            Atomic {
                raw: AtomicPtr::new(Box::into_raw(Box::new(value))),
                _marker: PhantomData,
            }
        }

        /// Loads the pointer under `_guard`.
        pub fn load<'g>(&self, ord: Ordering, _guard: &'g Guard) -> Shared<'g, T> {
            Shared {
                raw: self.raw.load(ord),
                _marker: PhantomData,
            }
        }

        /// Stores `new` into the atomic.
        pub fn store<P: Pointer<T>>(&self, new: P, ord: Ordering) {
            self.raw.store(new.into_ptr(), ord);
        }

        /// Atomically replaces the pointer with `new`, returning the previous
        /// value under `_guard`.
        pub fn swap<'g, P: Pointer<T>>(
            &self,
            new: P,
            ord: Ordering,
            _guard: &'g Guard,
        ) -> Shared<'g, T> {
            Shared {
                raw: self.raw.swap(new.into_ptr(), ord),
                _marker: PhantomData,
            }
        }

        /// Compare-and-exchanges `current` for `new`, returning the witnessed
        /// value and the unconsumed `new` pointer on failure.
        pub fn compare_exchange<'g, P: Pointer<T>>(
            &self,
            current: Shared<'_, T>,
            new: P,
            success: Ordering,
            failure: Ordering,
            _guard: &'g Guard,
        ) -> Result<Shared<'g, T>, CompareExchangeError<'g, T, P>> {
            let new_raw = new.into_ptr();
            match self
                .raw
                .compare_exchange(current.into_ptr(), new_raw, success, failure)
            {
                Ok(prev) => Ok(Shared {
                    raw: prev,
                    _marker: PhantomData,
                }),
                Err(witnessed) => Err(CompareExchangeError {
                    current: Shared {
                        raw: witnessed,
                        _marker: PhantomData,
                    },
                    // SAFETY: `new_raw` came from `new.into_ptr()` just above.
                    new: unsafe { P::from_ptr(new_raw) },
                }),
            }
        }
    }

    impl<T> From<Shared<'_, T>> for Atomic<T> {
        fn from(shared: Shared<'_, T>) -> Self {
            Atomic {
                raw: AtomicPtr::new(shared.into_ptr()),
                _marker: PhantomData,
            }
        }
    }

    impl<T> Default for Atomic<T> {
        fn default() -> Self {
            Atomic::null()
        }
    }

    impl<T> fmt::Debug for Atomic<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.debug_tuple("Atomic")
                .field(&self.raw.load(Ordering::Relaxed))
                .finish()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::epoch::{self, Atomic, Owned};
    use std::sync::atomic::Ordering;

    #[test]
    fn cas_swings_pointer_and_returns_owned_on_failure() {
        let guard = epoch::pin();
        let slot: Atomic<i32> = Atomic::null();
        let first = Owned::new(1);
        assert!(slot
            .compare_exchange(
                epoch::Shared::null(),
                first,
                Ordering::AcqRel,
                Ordering::Acquire,
                &guard,
            )
            .is_ok());
        let current = slot.load(Ordering::Acquire, &guard);
        // A CAS expecting null must now fail and hand the Owned back.
        let err = slot
            .compare_exchange(
                epoch::Shared::null(),
                Owned::new(2),
                Ordering::AcqRel,
                Ordering::Acquire,
                &guard,
            )
            .unwrap_err();
        assert_eq!(*err.new, 2);
        assert_eq!(err.current, current);
        // SAFETY: single-threaded test owns the structure.
        assert_eq!(*unsafe { current.deref() }, 1);
        unsafe { drop(current.into_owned()) };
    }

    #[test]
    fn owned_round_trip_through_shared() {
        let guard = epoch::pin();
        let shared = Owned::new(7).into_shared(&guard);
        assert!(!shared.is_null());
        // SAFETY: never retired in this test.
        assert_eq!(unsafe { shared.as_ref() }, Some(&7));
        unsafe { drop(shared.into_owned()) };
    }
}
