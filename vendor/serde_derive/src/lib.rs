//! Offline no-op stand-in for `serde_derive` (see `vendor/README.md`).
//!
//! The real derives generate `Serialize`/`Deserialize` impls; here those traits
//! are blanket-implemented markers (see the `serde` stub), so the derives can
//! simply expand to nothing while keeping `#[derive(Serialize, Deserialize)]`
//! attributes compiling.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use proc_macro::TokenStream;

/// No-op stand-in for `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
