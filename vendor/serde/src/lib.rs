//! Offline stand-in for `serde` (see `vendor/README.md`).
//!
//! `Serialize` and `Deserialize` are blanket-implemented marker traits: every
//! type satisfies them, and the re-exported derives expand to nothing. This
//! keeps `#[derive(Serialize, Deserialize)]` and `T: Serialize` bounds
//! compiling without a serialisation backend.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`; blanket-implemented for all types.
pub trait Serialize {}

impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`; blanket-implemented for all types.
pub trait Deserialize<'de>: Sized {}

impl<'de, T> Deserialize<'de> for T {}
