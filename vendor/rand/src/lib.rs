//! Offline stand-in for `rand` (see `vendor/README.md`).
//!
//! Implements the slice of the `rand` 0.8 API the workspace uses:
//! `SeedableRng::seed_from_u64`, `Rng::gen_bool`, `Rng::gen_range` over integer
//! ranges, and `rngs::StdRng`. The generator is SplitMix64 — deterministic per
//! seed, but its streams differ from the real crate's ChaCha12.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// A source of random `u64`s.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// An RNG that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Creates an RNG deterministically from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Convenience sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool called with p={p}");
        // 53 high bits give a uniform float in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }

    /// Samples uniformly from `range` (half-open or inclusive integer ranges).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample(self)
    }
}

impl<R: RngCore> Rng for R {}

/// A range that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range called with empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = self.into_inner();
                assert!(start <= end, "gen_range called with empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (start as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_sample_range!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

/// Concrete RNG implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard RNG: SplitMix64 (Steele, Lea & Flood 2014).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            StdRng { state }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: i64 = rng.gen_range(-5..5);
            assert!((-5..5).contains(&v));
            let w: usize = rng.gen_range(0..=3);
            assert!(w <= 3);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }
}
