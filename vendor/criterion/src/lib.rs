//! Offline stand-in for `criterion` (see `vendor/README.md`).
//!
//! Implements the benchmarking API surface used by `crates/bench`: groups,
//! `bench_function` / `bench_with_input`, `Bencher::iter` / `iter_batched`,
//! and the `criterion_group!` / `criterion_main!` macros. Instead of the real
//! crate's statistical machinery, every benchmark runs `sample_size`
//! iterations and prints the mean wall time per iteration.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// The benchmark driver. Configuration setters mirror the builder style of the
/// real crate.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            measurement_time: Duration::from_millis(400),
        }
    }
}

impl Criterion {
    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Sets the time budget per benchmark (upper bound in this stub).
    pub fn measurement_time(mut self, dur: Duration) -> Self {
        self.measurement_time = dur;
        self
    }

    /// Sets the warm-up time (accepted for API parity; ignored by this stub).
    pub fn warm_up_time(self, _dur: Duration) -> Self {
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
        }
    }

    /// Runs a single benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_benchmark(self.sample_size, self.measurement_time, &id.to_string(), f);
        self
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    /// Group-scoped override; later groups fall back to the `Criterion` value.
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let label = format!("{}/{}", self.name, id);
        let samples = self.sample_size.unwrap_or(self.criterion.sample_size);
        run_benchmark(samples, self.criterion.measurement_time, &label, f);
        self
    }

    /// Runs one benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Overrides the sample size for the rest of this group only.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = Some(n);
        self
    }

    /// Finishes the group (a no-op in this stub, kept for API parity).
    pub fn finish(self) {}
}

/// A benchmark identifier: a function name plus an optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: String,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// Creates an id for `function` at parameter value `parameter`.
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            function: function.into(),
            parameter: Some(parameter.to_string()),
        }
    }

    /// Creates an id from a parameter value alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            function: String::new(),
            parameter: Some(parameter.to_string()),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (&self.function.is_empty(), &self.parameter) {
            (false, Some(p)) => write!(f, "{}/{}", self.function, p),
            (false, None) => write!(f, "{}", self.function),
            (true, Some(p)) => write!(f, "{p}"),
            (true, None) => Ok(()),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(function: &str) -> Self {
        BenchmarkId {
            function: function.to_string(),
            parameter: None,
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(function: String) -> Self {
        BenchmarkId {
            function,
            parameter: None,
        }
    }
}

/// Hint for `iter_batched` about per-iteration input size (ignored here).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small inputs: batch many per allocation in the real crate.
    SmallInput,
    /// Large inputs: one per batch in the real crate.
    LargeInput,
    /// Inputs of a caller-chosen batch size.
    NumBatches(u64),
}

/// Passed to the benchmark closure; `iter` does the timing.
#[derive(Debug)]
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
    deadline: Duration,
}

impl Bencher {
    /// Times `routine` over the configured number of iterations. The clock is
    /// only read every 64 iterations (for the deadline check) and once at the
    /// end, so per-iteration timing overhead stays out of the reported mean.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        let mut done = 0u64;
        while done < self.iterations {
            black_box(routine());
            done += 1;
            if done.is_multiple_of(64) && start.elapsed() >= self.deadline {
                break;
            }
        }
        self.elapsed = start.elapsed();
        self.iterations = done;
    }

    /// Times `routine` over fresh inputs produced by `setup`; only the routine
    /// would be timed in the real crate, and this stub keeps that contract.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        self.elapsed = Duration::ZERO;
        let mut timed = Duration::ZERO;
        let start = Instant::now();
        for done in 0..self.iterations {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            timed += t0.elapsed();
            if start.elapsed() >= self.deadline && done > 0 {
                self.iterations = done + 1;
                break;
            }
        }
        self.elapsed = timed;
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(
    samples: usize,
    deadline: Duration,
    label: &str,
    mut f: F,
) {
    let mut bencher = Bencher {
        iterations: samples as u64,
        elapsed: Duration::ZERO,
        deadline,
    };
    f(&mut bencher);
    let mean = if bencher.iterations > 0 {
        bencher.elapsed / bencher.iterations as u32
    } else {
        Duration::ZERO
    };
    println!(
        "bench: {label:<60} {mean:>12?}/iter ({} iters)",
        bencher.iterations
    );
}

/// Declares a group of benchmark functions, mirroring the two forms of the
/// real macro.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark binary's `main`, running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_counts_iterations() {
        let mut c = Criterion::default().sample_size(5);
        let mut calls = 0u64;
        let mut group = c.benchmark_group("g");
        group.bench_function("count", |b| {
            b.iter(|| calls += 1);
        });
        group.finish();
        assert!(calls >= 1);
    }

    #[test]
    fn iter_batched_feeds_fresh_inputs() {
        let mut c = Criterion::default().sample_size(4);
        let mut seen = Vec::new();
        c.bench_function("batched", |b| {
            let mut n = 0;
            seen.clear();
            b.iter_batched(
                || {
                    n += 1;
                    n
                },
                |input| seen.push(input),
                BatchSize::SmallInput,
            );
        });
        assert_eq!(seen, (1..=seen.len() as i32).collect::<Vec<_>>());
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
        assert_eq!(BenchmarkId::from("plain").to_string(), "plain");
        assert_eq!(BenchmarkId::from_parameter(8).to_string(), "8");
    }
}
