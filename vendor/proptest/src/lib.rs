//! Offline stand-in for `proptest` (see `vendor/README.md`).
//!
//! Random testing without shrinking: the [`proptest!`] macro runs each test
//! body for `ProptestConfig::cases` inputs drawn from [`Strategy`] values.
//! Supported strategies are integer ranges, `any::<bool>()`, tuples,
//! `collection::vec`, and [`Strategy::prop_map`] — the surface the
//! `tests-integration` property suites use. A failing property panics via
//! ordinary `assert!` after printing the case number and the generated
//! input's `Debug` form to stderr; no shrinking is attempted.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};
use std::ops::Range;

/// The RNG driving test-case generation. Seeded from the test name so runs
/// are deterministic and independent across tests.
#[derive(Debug, Clone)]
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    /// Creates a deterministic RNG from a test name.
    pub fn from_name(name: &str) -> Self {
        let seed = name.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
            (h ^ b as u64).wrapping_mul(0x1000_0000_01b3)
        });
        TestRng {
            inner: StdRng::seed_from_u64(seed),
        }
    }

    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
}

/// Run-time configuration for a `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` inputs per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A generator of test-case values.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { strategy: self, f }
    }
}

/// The strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    strategy: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.strategy.generate(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.inner.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! impl_tuple_strategy {
    ($($s:ident . $idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A.0);
impl_tuple_strategy!(A.0, B.1);
impl_tuple_strategy!(A.0, B.1, C.2);
impl_tuple_strategy!(A.0, B.1, C.2, D.3);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);

/// Types with a canonical "generate anything" strategy.
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

/// A strategy producing arbitrary values of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Bounds on a generated collection's length.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max_exclusive: usize,
    }

    /// Conversions accepted as the size argument of [`vec()`].
    pub trait IntoSizeRange {
        /// Converts into concrete length bounds.
        fn into_size_range(self) -> SizeRange;
    }

    impl IntoSizeRange for usize {
        fn into_size_range(self) -> SizeRange {
            SizeRange {
                min: self,
                max_exclusive: self + 1,
            }
        }
    }

    impl IntoSizeRange for Range<usize> {
        fn into_size_range(self) -> SizeRange {
            assert!(self.start < self.end, "empty size range");
            SizeRange {
                min: self.start,
                max_exclusive: self.end,
            }
        }
    }

    /// The strategy returned by [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A strategy producing `Vec`s of `element` values with a length drawn
    /// from `size` (an exact `usize` or a half-open range).
    pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into_size_range(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = (self.size.min..self.size.max_exclusive).generate(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The names a test file conventionally glob-imports.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, proptest, Arbitrary, ProptestConfig, Strategy,
    };
}

/// Asserts a condition inside a property; maps to `assert!` in this stub.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property; maps to `assert_eq!` in this stub.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a property; maps to `assert_ne!` in this stub.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }` item
/// becomes a `#[test]` that runs `body` for every generated input.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let mut rng = $crate::TestRng::from_name(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                for case in 0..config.cases {
                    let strategies = ( $( &($strat), )+ );
                    $crate::run_case(case, strategies, &mut rng, |( $($arg,)+ )| $body);
                }
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $( $(#[$meta])* fn $name( $($arg in $strat),+ ) $body )*
        }
    };
}

/// Runs one generated case (exposed for the [`proptest!`] macro). On panic,
/// the case number and the generated input's `Debug` form are printed before
/// the panic resumes, since there is no shrinking to reproduce the input.
pub fn run_case<S, F>(case: u32, strategies: S, rng: &mut TestRng, body: F)
where
    S: CaseStrategies,
    S::Values: std::fmt::Debug,
    F: FnOnce(S::Values),
{
    let values = strategies.generate_all(rng);
    let input = format!("{values:?}");
    if let Err(panic) = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(values))) {
        eprintln!("proptest stub: property failed on case {case} with input: {input}");
        std::panic::resume_unwind(panic);
    }
}

/// Tuple-of-strategies helper backing [`run_case`].
pub trait CaseStrategies {
    /// The tuple of generated values.
    type Values;

    /// Draws one value from each strategy.
    fn generate_all(&self, rng: &mut TestRng) -> Self::Values;
}

macro_rules! impl_case_strategies {
    ($($s:ident . $idx:tt),+) => {
        impl<$($s: Strategy),+> CaseStrategies for ($(&$s,)+) {
            type Values = ($($s::Value,)+);

            fn generate_all(&self, rng: &mut TestRng) -> Self::Values {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_case_strategies!(A.0);
impl_case_strategies!(A.0, B.1);
impl_case_strategies!(A.0, B.1, C.2);
impl_case_strategies!(A.0, B.1, C.2, D.3);
impl_case_strategies!(A.0, B.1, C.2, D.3, E.4);
impl_case_strategies!(A.0, B.1, C.2, D.3, E.4, F.5);

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_and_vecs_respect_bounds() {
        let mut rng = crate::TestRng::from_name("bounds");
        for _ in 0..200 {
            let v = crate::Strategy::generate(&(3..9i64), &mut rng);
            assert!((3..9).contains(&v));
            let xs = crate::Strategy::generate(&crate::collection::vec(0..5u32, 2..6), &mut rng);
            assert!((2..6).contains(&xs.len()));
            assert!(xs.iter().all(|x| *x < 5));
        }
    }

    #[test]
    fn exact_vec_size_is_exact() {
        let mut rng = crate::TestRng::from_name("exact");
        let xs = crate::Strategy::generate(&crate::collection::vec(any::<bool>(), 7), &mut rng);
        assert_eq!(xs.len(), 7);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_generates_tuples(pair in (0..4u32, any::<bool>()), n in 1..10usize) {
            prop_assert!(pair.0 < 4);
            prop_assert!((1..10).contains(&n));
        }

        #[test]
        fn prop_map_applies(doubled in (0..10i64).prop_map(|v| v * 2)) {
            prop_assert_eq!(doubled % 2, 0);
        }
    }
}
