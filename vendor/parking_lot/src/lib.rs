//! Offline stand-in for `parking_lot` (see `vendor/README.md`).
//!
//! Wraps `std::sync` primitives behind the `parking_lot` API shape the
//! workspace uses: infallible `lock()` that shrugs off poisoning instead of
//! returning a `Result`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::sync::PoisonError;

/// A mutual-exclusion lock with the `parking_lot` calling convention.
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex and returns the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available. Unlike `std`, a
    /// poisoned lock is not an error: the guard is returned regardless.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(guard),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the protected value (no locking needed).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

/// A reader-writer lock with the `parking_lot` calling convention.
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

/// RAII read guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// RAII write guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock protecting `value`.
    pub fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(41);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn try_lock_contended() {
        let m = Mutex::new(());
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(1);
        assert_eq!(*l.read(), 1);
        *l.write() = 2;
        assert_eq!(*l.read(), 2);
    }
}
