//! Helper crate hosting the runnable examples of the `linrv` workspace.
//!
//! The examples live under `examples/`:
//!
//! * `quickstart` — wrap a lock-free queue into a self-enforced queue and run a
//!   multi-threaded workload with runtime verification of every response.
//! * `accountable_kv` — a key-value store backed by a faulty register; clients detect
//!   the violation and obtain a forensic certificate (Section 8.3 of the paper).
//! * `faulty_queue_forensics` — a producer/consumer work-queue over a lossy queue with
//!   a decoupled background verifier (Figure 12).
//! * `impossibility` — prints the Theorem 5.1 `E`/`F` executions and the
//!   indistinguishability argument.
//! * `figures` — reproduces the history figures of the paper (Figures 1, 3, 5, 6, 8, 9)
//!   and re-checks each caption's claim.
//!
//! All examples build on the `linrv` facade crate, with no process-id threading
//! and no stringly-typed wire-level operations or values in any of them. Four use
//! the typed session API end to end; `impossibility` reaches through `linrv::raw`,
//! since its subject *is* the raw model that the facade exists to evade.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Formats a banner line used by the examples' output.
pub fn banner(title: &str) -> String {
    format!(
        "==== {title} {}",
        "=".repeat(60usize.saturating_sub(title.len()))
    )
}

#[cfg(test)]
mod tests {
    #[test]
    fn banner_contains_title() {
        assert!(super::banner("hello").contains("hello"));
    }
}
