//! Accountable key-value service (Section 8.3 of the paper, scaled out).
//!
//! A KV service maps keys to registers supplied by a third-party vendor. By
//! routing every key through a `MonitorPool`, the service gets per-key runtime
//! verification of linearizability at service scale: monitors are created
//! lazily per key, events flow through sharded bounded queues into a
//! work-stealing pool of checker threads, and verified history prefixes are
//! garbage-collected so memory stays bounded under sustained load.
//!
//! One vendor register is rigged: key `--objects / 2` occasionally serves a
//! value nobody ever wrote. The pool must flag exactly that key — with the
//! violating prefix as evidence — while every other key keeps verifying.
//!
//! ```text
//! cargo run --release --example accountable_kv -- \
//!     --clients 16 --objects 256 --ops 400 --seed 42
//! ```
//!
//! Exits `0` when the rigged key (and only the rigged key) is flagged; the CI
//! smoke test pins that exit code. Per-shard throughput is printed at the end,
//! doubling as a smoke benchmark of the ingestion path.
//!
//! Two observability flags tap the `linrv-obs` layer: `--dashboard` prints a
//! live ingestion/checking status line every 250ms while the load runs, and
//! `--metrics-out FILE` switches recording on and writes the full metrics
//! snapshot at exit (Prometheus text for `.prom`/`.txt`, JSON otherwise) —
//! queue depths, producer-block and check latencies included.

use linrv::history::{OpValue, Operation, ProcessId};
use linrv::runtime::impls::AtomicIntRegister;
use linrv::runtime::ConcurrentObject;
use linrv::spec::ObjectKind;
use linrv_pool::prelude::*;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// A value no client ever writes: reading it back is a self-evident violation.
const EVIL_VALUE: i64 = -999_999;

/// The rigged vendor register: correct, except that every third read returns
/// [`EVIL_VALUE`] regardless of what was written. Deterministic by design, so
/// the example's outcome never depends on thread scheduling.
struct EvilRegister {
    inner: AtomicIntRegister,
    reads: AtomicU64,
}

impl EvilRegister {
    fn new() -> Self {
        EvilRegister {
            inner: AtomicIntRegister::new(),
            reads: AtomicU64::new(0),
        }
    }
}

impl ConcurrentObject for EvilRegister {
    fn kind(&self) -> ObjectKind {
        ObjectKind::Register
    }

    fn apply(&self, process: ProcessId, op: &Operation) -> OpValue {
        if op.kind == "Read" && self.reads.fetch_add(1, Ordering::Relaxed) % 3 == 2 {
            return OpValue::Int(EVIL_VALUE);
        }
        self.inner.apply(process, op)
    }

    fn name(&self) -> String {
        "evil vendor register".into()
    }
}

/// Seeded splitmix64: the load generator's only source of randomness, so a
/// given `--seed` always produces the same request stream.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

struct Args {
    clients: u64,
    objects: u64,
    ops: u64,
    seed: u64,
    dashboard: bool,
    metrics_out: Option<String>,
}

fn parse_args() -> Args {
    let mut args = Args {
        clients: 8,
        objects: 64,
        ops: 200,
        seed: 42,
        dashboard: false,
        metrics_out: None,
    };
    let mut iter = std::env::args().skip(1);
    while let Some(flag) = iter.next() {
        if flag == "--dashboard" {
            args.dashboard = true;
            continue;
        }
        if flag == "--metrics-out" {
            args.metrics_out = Some(
                iter.next()
                    .unwrap_or_else(|| panic!("--metrics-out needs a file path")),
            );
            continue;
        }
        let value: u64 = iter
            .next()
            .and_then(|raw| raw.parse().ok())
            .unwrap_or_else(|| panic!("{flag} needs a numeric value"));
        match flag.as_str() {
            "--clients" => args.clients = value.max(1),
            "--objects" => args.objects = value.max(2),
            "--ops" => args.ops = value.max(1),
            "--seed" => args.seed = value,
            other => panic!(
                "unknown flag {other} (use --clients/--objects/--ops/--seed/--dashboard/--metrics-out)"
            ),
        }
    }
    args
}

/// One dashboard tick: ingestion and checking totals plus per-shard queue
/// depths, all read through the pool's metrics-backed stats views.
fn dashboard_line(pool: &MonitorPool<Box<dyn ConcurrentObject>, RegisterSpec>) -> String {
    let stats = pool.stats();
    let depths: Vec<String> = pool
        .shard_stats()
        .iter()
        .map(|shard| shard.queued.to_string())
        .collect();
    format!(
        "[dash] ingested {:>8}  processed {:>8}  checks {:>6}  gced {:>8}  queued [{}]",
        stats.ingested,
        stats.processed,
        stats.checks,
        stats.gced_events,
        depths.join(" "),
    )
}

fn main() {
    let args = parse_args();
    let bad_key = args.objects / 2;
    if args.metrics_out.is_some() || args.dashboard {
        // Recording stays off unless asked for: the example doubles as the
        // overhead demo, so the default run pays only the kill-switch load.
        if !linrv_obs::set_enabled(true) {
            eprintln!("warning: linrv-obs was compiled out; metrics will be empty");
        }
        linrv_pool::metrics::declare();
    }
    println!("{}", linrv_examples::banner("accountable KV service"));
    println!(
        "  {} clients x {} ops over {} keys (seed {}), rigged key: {bad_key}",
        args.clients, args.ops, args.objects, args.seed
    );

    let pool = Arc::new(
        PoolBuilder::new(RegisterSpec::new())
            .shards(8)
            .workers(4)
            .sessions_per_object((args.clients as usize).min(64))
            .snapshot(SnapshotBackend::Locked)
            .first_check(16)
            .build(move |key| -> Box<dyn ConcurrentObject> {
                if key == bad_key {
                    Box::new(EvilRegister::new())
                } else {
                    Box::new(AtomicIntRegister::new())
                }
            }),
    );

    // The load generator: every client hammers pseudo-random keys with
    // write/read pairs. Clients write only non-negative values, so EVIL_VALUE
    // can never be an honest response.
    let started = Instant::now();
    let load_done = AtomicBool::new(false);
    std::thread::scope(|scope| {
        if args.dashboard {
            let pool = Arc::clone(&pool);
            let load_done = &load_done;
            scope.spawn(move || {
                while !load_done.load(Ordering::Acquire) {
                    println!("  {}", dashboard_line(&pool));
                    std::thread::sleep(std::time::Duration::from_millis(250));
                }
                println!("  {}  (load drained)", dashboard_line(&pool));
            });
        }
        let clients: Vec<_> = (0..args.clients)
            .map(|client| {
                let pool = Arc::clone(&pool);
                let mut rng = Rng(args.seed ^ (client.wrapping_mul(0x0DDB_1A5E_5BAD_5EED)));
                let objects = args.objects;
                let ops = args.ops;
                scope.spawn(move || {
                    for _ in 0..ops {
                        let key = rng.next() % objects;
                        let Ok(session) = pool.session(key) else {
                            continue; // all slots of this key busy: move on
                        };
                        let _ = session.write((rng.next() % 1_000) as i64);
                        let _ = session.read();
                    }
                })
            })
            .collect();
        for client in clients {
            let _ = client.join();
        }
        load_done.store(true, Ordering::Release);
    });
    pool.quiesce();
    let elapsed = started.elapsed();

    // A short sequential audit of the rigged key guarantees at least three
    // reads hit it, so the sentinel is served and caught deterministically
    // whatever the random load did.
    {
        let session = pool
            .session(bad_key)
            .expect("load generator released slots");
        let _ = session.write(7);
        for _ in 0..6 {
            let _ = session.read();
        }
    }

    let verdicts = pool.check_all();
    let flagged: Vec<u64> = verdicts
        .iter()
        .filter(|(_, verdict)| !verdict.is_correct())
        .map(|(key, _)| *key)
        .collect();

    let stats = pool.stats();
    println!(
        "\n  ingestion: {} events in {:.2?}",
        stats.ingested, elapsed
    );
    println!("  per-shard throughput:");
    for shard in pool.shard_stats() {
        let events_per_sec = shard.ingested as f64 / elapsed.as_secs_f64();
        println!(
            "    shard {:>2}: {:>5} keys, {:>9} events, {:>12.0} events/s",
            shard.shard, shard.objects, shard.ingested, events_per_sec
        );
    }
    println!(
        "  checking: {} checks, {} events GC'd after verification, {} still retained",
        stats.checks, stats.gced_events, stats.retained_events
    );
    println!("  work stealing: {} stolen batches", stats.steals);

    match verdicts.get(&bad_key) {
        Some(PoolVerdict::Violation(violation)) => {
            println!("\n  rigged key {bad_key} caught: {violation}");
            println!("  violating prefix (first lines):");
            for line in violation.witness.to_string().lines().take(6) {
                println!("    {line}");
            }
        }
        _ => {
            eprintln!("ERROR: the rigged key {bad_key} was not flagged");
            std::process::exit(1);
        }
    }
    if flagged != vec![bad_key] {
        eprintln!("ERROR: healthy keys were flagged too: {flagged:?}");
        std::process::exit(1);
    }
    println!(
        "\n  every other key verified clean ({} keys checked); the vendor of key \
         {bad_key} can be held accountable.",
        verdicts.len()
    );

    if let Some(path) = &args.metrics_out {
        let snapshot = linrv_obs::Registry::global().snapshot();
        match snapshot.write_file(std::path::Path::new(path)) {
            Ok(()) => println!("  metrics snapshot written to {path}"),
            Err(err) => {
                eprintln!("ERROR: cannot write metrics to {path}: {err}");
                std::process::exit(1);
            }
        }
    }
}
