//! Accountable key-value store (Section 8.3 of the paper).
//!
//! A client library uses a register supplied by a third party. By replacing the
//! register with its self-enforced counterpart, the client gets the guarantee that
//! every non-ERROR response is linearizable — and, when the third-party implementation
//! misbehaves, an execution certificate that can be handed to a forensic stage.
//!
//! ```text
//! cargo run --example accountable_kv
//! ```

use linrv_check::LinSpec;
use linrv_core::enforce::SelfEnforced;
use linrv_history::{OpValue, ProcessId};
use linrv_runtime::faulty::StaleRegister;
use linrv_runtime::impls::AtomicIntRegister;
use linrv_spec::ops::register;
use linrv_spec::RegisterSpec;

fn run_client<A: linrv_runtime::ConcurrentObject>(
    name: &str,
    store: &SelfEnforced<A, LinSpec<RegisterSpec>>,
) {
    println!("{}", linrv_examples::banner(name));
    let p = ProcessId::new(0);
    let mut flagged = 0usize;
    for version in 1..=8i64 {
        store.apply_verified(p, &register::write(version));
        let read = store.apply_verified(p, &register::read());
        match (&read.value, &read.underlying) {
            (OpValue::Error, underlying) => {
                flagged += 1;
                println!(
                    "  version {version}: response {underlying} REJECTED by runtime verification"
                );
            }
            (value, _) => println!("  version {version}: read back {value} (verified)"),
        }
    }
    let certificate = store.certificate();
    println!(
        "  certificate: {} ops, verdict = {}",
        certificate.operations(),
        if certificate.is_correct() {
            "CORRECT"
        } else {
            "VIOLATION"
        }
    );
    if flagged > 0 {
        println!("  forensic witness (sketch history of the violating run):");
        for line in certificate.sketch.to_string().lines().take(8) {
            println!("    {line}");
        }
    }
}

fn main() {
    // A healthy vendor implementation: nothing is ever flagged.
    let healthy = SelfEnforced::new(
        AtomicIntRegister::new(),
        LinSpec::new(RegisterSpec::new()),
        1,
    );
    run_client("accountable KV over a correct register", &healthy);
    assert!(healthy.certificate().is_correct());

    // A buggy vendor implementation: every second read is stale. The self-enforced
    // wrapper converts the stale responses into ERROR and certifies the violation.
    let buggy = SelfEnforced::new(StaleRegister::new(2), LinSpec::new(RegisterSpec::new()), 1);
    run_client("accountable KV over a stale register", &buggy);
    assert!(!buggy.certificate().is_correct());

    println!("\nthe buggy vendor can now be held accountable: the certificate is a");
    println!("non-linearizable history of its own responses.");
}
