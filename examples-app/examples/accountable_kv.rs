//! Accountable key-value store (Section 8.3 of the paper).
//!
//! A client library uses a register supplied by a third party. By replacing the
//! register with its monitored counterpart, the client gets the guarantee that
//! every `Ok` response is linearizable — and, when the third-party implementation
//! misbehaves, an execution certificate that can be handed to a forensic stage.
//!
//! ```text
//! cargo run --example accountable_kv
//! ```

use linrv::prelude::*;
use linrv::runtime::faulty::StaleRegister;
use linrv::runtime::impls::AtomicIntRegister;
use linrv::runtime::ConcurrentObject;

fn run_client<A: ConcurrentObject>(name: &str, store: &Monitor<A, RegisterSpec>) {
    println!("{}", linrv_examples::banner(name));
    let session = store.register().expect("one client slot");
    let mut flagged = 0usize;
    for version in 1..=8i64 {
        let _ = session.write(version);
        match session.read() {
            Ok(value) => println!("  version {version}: read back {value} (verified)"),
            Err(rejected) => {
                flagged += 1;
                println!("  version {version}: {rejected}");
            }
        }
    }
    let certificate = store.certificate();
    println!(
        "  certificate: {} ops, verdict = {}",
        certificate.operations(),
        if certificate.is_correct() {
            "CORRECT"
        } else {
            "VIOLATION"
        }
    );
    if flagged > 0 {
        println!("  forensic witness (sketch history of the violating run):");
        for line in certificate.sketch.to_string().lines().take(8) {
            println!("    {line}");
        }
    }
}

fn main() {
    // A healthy vendor implementation: nothing is ever flagged.
    let healthy = Monitor::builder(RegisterSpec::new())
        .processes(1)
        .build(AtomicIntRegister::new());
    run_client("accountable KV over a correct register", &healthy);
    assert!(healthy.certificate().is_correct());

    // A buggy vendor implementation: every second read is stale. The monitor
    // converts the stale responses into rejections and certifies the violation.
    let buggy = Monitor::builder(RegisterSpec::new())
        .processes(1)
        .certificates(CertificatePolicy::OnViolation)
        .build(StaleRegister::new(2));
    run_client("accountable KV over a stale register", &buggy);
    assert!(!buggy.certificate().is_correct());
    assert!(
        buggy.first_violation().is_some(),
        "the first rejection captured a certificate automatically"
    );

    println!("\nthe buggy vendor can now be held accountable: the certificate is a");
    println!("non-linearizable history of its own responses.");
}
