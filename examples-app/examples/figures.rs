//! Reproduces the history figures of the paper and re-checks each caption's claim.
//!
//! ```text
//! cargo run --example figures
//! ```

use linrv::prelude::*;
use linrv::render_timeline;
use linrv::runtime::faulty::Theorem51Queue;
use linrv::runtime::impls::SpecObject;
use linrv::spec::typed::queue::{Dequeue, Enqueue};
use linrv::spec::typed::stack::{Pop, Push};

/// Figure 1: two stack executions with identical per-process views; the first is
/// linearizable, the second is not.
fn figure1() {
    println!("{}", linrv_examples::banner("Figure 1"));

    let mut b = TypedHistoryBuilder::<StackSpec>::new();
    let push = b.invoke(0, Push(1));
    let pop = b.invoke(1, Pop);
    b.respond(pop, Some(1));
    b.respond(push, ());
    let top = b.build();
    println!("{}", render_timeline(&top));
    let verdict = linrv::is_linearizable(StackSpec::new(), &top);
    println!("top history linearizable? {verdict}\n");
    assert!(verdict);

    let mut b = TypedHistoryBuilder::<StackSpec>::new();
    b.complete(1, Pop, Some(1));
    b.complete(0, Push(1), ());
    let bottom = b.build();
    println!("{}", render_timeline(&bottom));
    let verdict = linrv::is_linearizable(StackSpec::new(), &bottom);
    println!("bottom history linearizable? {verdict}");
    assert!(!verdict);
    println!("same per-process views, different verdicts: real time decides.\n");
}

/// Figure 3: three-process stack histories, the first linearizable, the second not.
fn figure3() {
    println!("{}", linrv_examples::banner("Figure 3"));

    let mut b = TypedHistoryBuilder::<StackSpec>::new();
    let push1 = b.invoke(0, Push(1));
    let push2 = b.invoke(2, Push(2));
    let pop1 = b.invoke(1, Pop);
    b.respond(push1, ());
    b.respond(push2, ());
    b.respond(pop1, Some(1));
    b.complete(0, Pop, Some(2));
    let top = b.build();
    println!("{}", render_timeline(&top));
    let verdict = linrv::is_linearizable(StackSpec::new(), &top);
    println!("top history linearizable? {verdict}\n");
    assert!(verdict);

    let mut b = TypedHistoryBuilder::<StackSpec>::new();
    b.complete(0, Push(1), ());
    b.complete(2, Push(2), ());
    b.complete(1, Pop, None);
    b.complete(0, Pop, Some(1));
    let bottom = b.build();
    println!("{}", render_timeline(&bottom));
    let verdict = linrv::is_linearizable(StackSpec::new(), &bottom);
    println!("bottom history linearizable? {verdict}");
    assert!(!verdict);
    println!("the stack cannot be empty when Pop():empty starts.\n");
}

/// Figures 5, 6 and 8: stretching, shrinking and enforcement via the DRV transform.
///
/// The session API exposes the three DRV phases (`stage` = announce, `execute` =
/// call into `A`, `commit` = collect the view) so the exact interleavings of the
/// figures can be scripted deterministically.
fn figures_5_6_8() {
    println!(
        "{}",
        linrv_examples::banner("Figures 5, 6, 8: the DRV transform at work")
    );

    // Long delays between announce and the actual call (Figure 5 bottom / Figure
    // 8): the actual history of A is not linearizable, but the sketch is — the
    // DRV transform enforced it. Slot 1 (the second registered session) plays the
    // adversarial p2 of Theorem 5.1.
    let monitor = Monitor::builder(QueueSpec::new())
        .processes(2)
        .mode(Mode::Observe)
        .build(Theorem51Queue::with_special_index(1));
    let enqueuer = monitor.register().expect("slot 0");
    let dequeuer = monitor.register().expect("slot 1");
    let staged_deq = dequeuer.stage(Dequeue);
    let staged_enq = enqueuer.stage(Enqueue(1));
    let exec_deq = dequeuer.execute(staged_deq);
    let exec_enq = enqueuer.execute(staged_enq);
    let got = dequeuer.commit(exec_deq).expect("observe mode never gates");
    enqueuer.commit(exec_enq).expect("observe mode never gates");
    assert_eq!(
        got,
        Some(1),
        "A answered the dequeue with a never-enqueued 1"
    );
    let sketch = monitor.certificate().sketch;
    println!("sketch when announcements precede both calls (operations overlap):");
    println!("{}", render_timeline(&sketch));
    let verdict = monitor.check();
    println!(
        "sketch linearizable? {} — A* enforced correctness\n",
        verdict.is_correct()
    );
    assert!(verdict.is_correct());

    // Tight interleaving (Figure 6 bottom): the violation survives into the sketch.
    let monitor = Monitor::builder(QueueSpec::new())
        .processes(2)
        .mode(Mode::Observe)
        .build(Theorem51Queue::with_special_index(1));
    let enqueuer = monitor.register().expect("slot 0");
    let dequeuer = monitor.register().expect("slot 1");
    let staged_deq = dequeuer.stage(Dequeue);
    let exec_deq = dequeuer.execute(staged_deq);
    dequeuer.commit(exec_deq).expect("observe mode never gates");
    enqueuer.enqueue(1).expect("observe mode never gates");
    let sketch = monitor.certificate().sketch;
    println!("sketch when each operation is tight (dequeue finishes before enqueue starts):");
    println!("{}", render_timeline(&sketch));
    let verdict = monitor.check();
    println!(
        "sketch linearizable? {} — the violation is detectable",
        verdict.is_correct()
    );
    assert!(!verdict.is_correct());
    println!();
}

/// Figure 9: reconstructing a history from views — an operation that was announced
/// but returned no tuple appears as *pending* in the sketch.
fn figure9() {
    println!(
        "{}",
        linrv_examples::banner("Figure 9: from views to histories")
    );

    let monitor = Monitor::builder(QueueSpec::new())
        .processes(3)
        .mode(Mode::Observe)
        .build(SpecObject::new(QueueSpec::new()));
    let s1 = monitor.register().expect("slot 0");
    let s2 = monitor.register().expect("slot 1");
    let s3 = monitor.register().expect("slot 2");

    s1.apply(Enqueue(1)).expect("verified");
    // p2 announces a dequeue but crashes before running it: later views contain
    // its invocation pair, yet no tuple is ever published for it.
    let _staged_forever = s2.stage(Dequeue);
    s1.apply(Enqueue(2)).expect("verified");
    s3.apply(Dequeue).expect("verified");

    let sketch = monitor.certificate().sketch;
    println!("reconstructed history X(λ_E):");
    println!("{}", render_timeline(&sketch));
    assert_eq!(sketch.complete_operations().count(), 3);
    assert_eq!(sketch.pending_operations().count(), 1);
    println!("(p2's operation appears as pending: it was announced but returned no tuple)\n");
}

fn main() {
    figure1();
    figure3();
    figures_5_6_8();
    figure9();
    println!("all figure claims re-checked successfully.");
}
