//! Reproduces the history figures of the paper and re-checks each caption's claim.
//!
//! ```text
//! cargo run --example figures
//! ```

use linrv_check::{GenLinObject, LinSpec};
use linrv_core::drv::Drv;
use linrv_core::sketch::sketch_history;
use linrv_core::view::TupleSet;
use linrv_history::display::render_timeline;
use linrv_history::{HistoryBuilder, OpValue, ProcessId};
use linrv_runtime::faulty::Theorem51Queue;
use linrv_spec::ops::{queue, stack};
use linrv_spec::{QueueSpec, StackSpec};

fn p(i: u32) -> ProcessId {
    ProcessId::new(i)
}

/// Figure 1: two stack executions with identical per-process views; the first is
/// linearizable, the second is not.
fn figure1() {
    println!("{}", linrv_examples::banner("Figure 1"));
    let stack_obj = LinSpec::new(StackSpec::new());

    let mut b = HistoryBuilder::new();
    let push = b.invoke(p(0), stack::push(1));
    let pop = b.invoke(p(1), stack::pop());
    b.respond(pop, OpValue::Int(1));
    b.respond(push, OpValue::Bool(true));
    let top = b.build();
    println!("{}", render_timeline(&top));
    println!("top history linearizable? {}\n", stack_obj.contains(&top));
    assert!(stack_obj.contains(&top));

    let mut b = HistoryBuilder::new();
    let pop = b.invoke(p(1), stack::pop());
    b.respond(pop, OpValue::Int(1));
    let push = b.invoke(p(0), stack::push(1));
    b.respond(push, OpValue::Bool(true));
    let bottom = b.build();
    println!("{}", render_timeline(&bottom));
    println!(
        "bottom history linearizable? {}",
        stack_obj.contains(&bottom)
    );
    assert!(!stack_obj.contains(&bottom));
    println!("same per-process views, different verdicts: real time decides.\n");
}

/// Figure 3: three-process stack histories, the first linearizable, the second not.
fn figure3() {
    println!("{}", linrv_examples::banner("Figure 3"));
    let stack_obj = LinSpec::new(StackSpec::new());

    let mut b = HistoryBuilder::new();
    let push1 = b.invoke(p(0), stack::push(1));
    let push2 = b.invoke(p(2), stack::push(2));
    let pop1 = b.invoke(p(1), stack::pop());
    b.respond(push1, OpValue::Bool(true));
    b.respond(push2, OpValue::Bool(true));
    b.respond(pop1, OpValue::Int(1));
    let pop2 = b.invoke(p(0), stack::pop());
    b.respond(pop2, OpValue::Int(2));
    let top = b.build();
    println!("{}", render_timeline(&top));
    println!("top history linearizable? {}\n", stack_obj.contains(&top));
    assert!(stack_obj.contains(&top));

    let mut b = HistoryBuilder::new();
    let push1 = b.invoke(p(0), stack::push(1));
    b.respond(push1, OpValue::Bool(true));
    let push2 = b.invoke(p(2), stack::push(2));
    b.respond(push2, OpValue::Bool(true));
    let pop_empty = b.invoke(p(1), stack::pop());
    b.respond(pop_empty, OpValue::Empty);
    let pop1 = b.invoke(p(0), stack::pop());
    b.respond(pop1, OpValue::Int(1));
    let bottom = b.build();
    println!("{}", render_timeline(&bottom));
    println!(
        "bottom history linearizable? {}",
        stack_obj.contains(&bottom)
    );
    assert!(!stack_obj.contains(&bottom));
    println!("the stack cannot be empty when Pop():empty starts.\n");
}

/// Figures 5, 6 and 8: stretching, shrinking and enforcement via the DRV transform.
fn figures_5_6_8() {
    println!(
        "{}",
        linrv_examples::banner("Figures 5, 6, 8: the DRV transform at work")
    );
    let queue_obj = LinSpec::new(QueueSpec::new());

    // Long delays between announce and the actual call (Figure 5 bottom / Figure 8):
    // the actual history of A is not linearizable, but the sketch is — A* enforced it.
    let drv = Drv::new(Theorem51Queue::new(p(1)), 2);
    let deq = drv.announce(p(1), &queue::dequeue());
    let enq = drv.announce(p(0), &queue::enqueue(1));
    let deq_value = drv.call_inner(&deq);
    let enq_value = drv.call_inner(&enq);
    let mut tuples = TupleSet::new();
    tuples.insert(drv.collect(deq, deq_value).tuple());
    tuples.insert(drv.collect(enq, enq_value).tuple());
    let sketch = sketch_history(&tuples).unwrap();
    println!("sketch when announcements precede both calls (operations overlap):");
    println!("{}", render_timeline(&sketch));
    println!(
        "sketch linearizable? {} — A* enforced correctness\n",
        queue_obj.contains(&sketch)
    );
    assert!(queue_obj.contains(&sketch));

    // Tight interleaving (Figure 6 bottom): the violation survives into the sketch.
    let drv = Drv::new(Theorem51Queue::new(p(1)), 2);
    let deq = drv.announce(p(1), &queue::dequeue());
    let deq_value = drv.call_inner(&deq);
    let deq_resp = drv.collect(deq, deq_value);
    let enq = drv.announce(p(0), &queue::enqueue(1));
    let enq_value = drv.call_inner(&enq);
    let enq_resp = drv.collect(enq, enq_value);
    let mut tuples = TupleSet::new();
    tuples.insert(deq_resp.tuple());
    tuples.insert(enq_resp.tuple());
    let sketch = sketch_history(&tuples).unwrap();
    println!("sketch when each operation is tight (dequeue finishes before enqueue starts):");
    println!("{}", render_timeline(&sketch));
    println!(
        "sketch linearizable? {} — the violation is detectable",
        queue_obj.contains(&sketch)
    );
    assert!(!queue_obj.contains(&sketch));
    println!();
}

/// Figure 9: reconstructing a history from views.
fn figure9() {
    println!(
        "{}",
        linrv_examples::banner("Figure 9: from views to histories")
    );
    use linrv_core::view::{InvocationPair, ViewTuple};
    use linrv_history::{OpId, Operation};

    let pair = |proc: u32, id: u64, label: i64| InvocationPair {
        process: p(proc),
        op_id: OpId::new(id),
        operation: Operation::new("Apply", OpValue::Int(label)),
    };
    let op1 = pair(0, 0, 1);
    let op1b = pair(0, 1, 2);
    let op2 = pair(1, 2, 3);
    let op3 = pair(2, 3, 4);
    let view: linrv_core::view::View = [op1.clone()].into_iter().collect();
    let view_p: linrv_core::view::View = [op1.clone(), op1b.clone(), op2.clone()]
        .into_iter()
        .collect();
    let view_pp: linrv_core::view::View = [op1.clone(), op1b.clone(), op2.clone(), op3.clone()]
        .into_iter()
        .collect();

    let mut tuples = TupleSet::new();
    tuples.insert(ViewTuple::new(op1, OpValue::Str("a".into()), view));
    tuples.insert(ViewTuple::new(op1b, OpValue::Str("b".into()), view_p));
    tuples.insert(ViewTuple::new(op3, OpValue::Str("d".into()), view_pp));

    println!("view tuples (λ_E):");
    for t in &tuples {
        println!("  {t}");
    }
    let sketch = sketch_history(&tuples).unwrap();
    println!("\nreconstructed history X(λ_E):");
    println!("{}", render_timeline(&sketch));
    assert_eq!(sketch.complete_operations().count(), 3);
    assert_eq!(sketch.pending_operations().count(), 1);
    println!("(p2's operation appears as pending: it was announced but returned no tuple)\n");
}

fn main() {
    figure1();
    figure3();
    figures_5_6_8();
    figure9();
    println!("all figure claims re-checked successfully.");
}
