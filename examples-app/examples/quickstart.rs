//! Quickstart: wrap a lock-free queue into its self-enforced counterpart and run a
//! concurrent workload in which every response is runtime verified.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use linrv::prelude::*;
use linrv::runtime::impls::MsQueue;

fn main() {
    println!(
        "{}",
        linrv_examples::banner("quickstart: self-enforced queue")
    );

    let processes = 3;
    let ops_per_process = 40i64;

    // Step 1: take any implementation A (here: a from-scratch Michael–Scott queue)
    // and the sequential specification O it should implement, and build the
    // self-enforced monitor V_{O,A} of Figure 11 in one fluent chain.
    let monitor = Monitor::builder(QueueSpec::new())
        .processes(processes)
        .snapshot(SnapshotBackend::Afek)
        .mode(Mode::Enforce)
        .build(MsQueue::new());

    // Step 2: use it exactly like the original queue, from several threads. Each
    // thread registers its own session; the session owns its process slot, so no
    // ids are threaded through the call sites.
    let verified_ops: usize = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for t in 0..processes as i64 {
            let session = monitor.register().expect("one slot per thread");
            handles.push(scope.spawn(move || {
                let mut verified = 0usize;
                for i in 0..ops_per_process {
                    if (t + i) % 2 == 0 {
                        session
                            .enqueue(t * 1_000_000 + i)
                            .expect("a correct queue must never be flagged (soundness)");
                    } else {
                        session
                            .dequeue()
                            .expect("a correct queue must never be flagged (soundness)");
                    }
                    verified += 1;
                }
                verified
            }));
        }
        handles.into_iter().map(|h| h.join().unwrap()).sum()
    });

    println!("applied and verified {verified_ops} operations across {processes} threads");

    // Step 3: obtain the certificate of the whole computation (Theorem 8.2 (3)).
    let certificate = monitor.certificate();
    println!(
        "certificate: {} operations covered, verdict = {}",
        certificate.operations(),
        if certificate.is_correct() {
            "CORRECT"
        } else {
            "VIOLATION"
        }
    );
    assert!(certificate.is_correct());
    println!("first lines of the certified sketch history:");
    for line in certificate.sketch.to_string().lines().take(6) {
        println!("  {line}");
    }
    println!("done.");
}
