//! Quickstart: wrap a lock-free queue into its self-enforced counterpart and run a
//! concurrent workload in which every response is runtime verified.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use linrv_check::LinSpec;
use linrv_core::enforce::SelfEnforced;
use linrv_history::ProcessId;
use linrv_runtime::impls::MsQueue;
use linrv_runtime::{Workload, WorkloadKind};
use linrv_spec::QueueSpec;
use std::sync::Arc;

fn main() {
    println!(
        "{}",
        linrv_examples::banner("quickstart: self-enforced queue")
    );

    let processes = 3;
    let ops_per_process = 40;

    // Step 1: take any implementation A (here: a from-scratch Michael–Scott queue) and
    // the abstract object O it should implement (linearizability w.r.t. the sequential
    // FIFO queue), and build the self-enforced implementation V_{O,A} of Figure 11.
    let enforced = Arc::new(SelfEnforced::new(
        MsQueue::new(),
        LinSpec::new(QueueSpec::new()),
        processes,
    ));

    // Step 2: use it exactly like the original queue, from several threads.
    let workload = Workload::new(WorkloadKind::Queue, 2024);
    let verified_ops: usize = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for t in 0..processes {
            let enforced = Arc::clone(&enforced);
            let ops = workload.operations_for(t, ops_per_process);
            handles.push(scope.spawn(move || {
                let p = ProcessId::new(t as u32);
                let mut verified = 0usize;
                for op in &ops {
                    let response = enforced.apply_verified(p, op);
                    assert!(
                        response.is_verified(),
                        "a correct queue must never be flagged (soundness)"
                    );
                    verified += 1;
                }
                verified
            }));
        }
        handles.into_iter().map(|h| h.join().unwrap()).sum()
    });

    println!("applied and verified {verified_ops} operations across {processes} threads");

    // Step 3: obtain the certificate of the whole computation (Theorem 8.2 (3)).
    let certificate = enforced.certificate();
    println!(
        "certificate: {} operations covered, verdict = {}",
        certificate.operations(),
        if certificate.is_correct() {
            "CORRECT"
        } else {
            "VIOLATION"
        }
    );
    assert!(certificate.is_correct());
    println!("first lines of the certified sketch history:");
    for line in certificate.sketch.to_string().lines().take(6) {
        println!("  {line}");
    }
    println!("done.");
}
