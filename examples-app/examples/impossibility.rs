//! The impossibility argument of Theorem 5.1, rendered executable.
//!
//! ```text
//! cargo run --example impossibility
//! ```

use linrv::raw::core::impossibility::theorem51_demo;
use linrv::render_timeline;

fn main() {
    println!(
        "{}",
        linrv_examples::banner("Theorem 5.1: linearizability is not runtime verifiable")
    );
    let demo = theorem51_demo();

    println!("\nExecution E — p2's Dequeue():1 completes before p1's Enqueue(1) starts:");
    println!("{}", render_timeline(&demo.history_e));
    println!("linearizable? {}", !demo.e_violates_linearizability());

    println!("\nExecution F — the calls to A happen in the opposite order:");
    println!("{}", render_timeline(&demo.history_f));
    println!("linearizable? {}", demo.f_is_linearizable());

    println!("\nWhat any verifier can observe (identical in E and F):");
    for obs in &demo.observations_e {
        println!("  {}: responses {:?}", obs.process, obs.responses);
    }
    println!("  detected history (read from shared memory):");
    println!("{}", render_timeline(&demo.observations_e[0].detected));

    println!(
        "indistinguishable to every process? {}",
        demo.executions_are_indistinguishable()
    );
    println!();
    println!("A sound verifier must stay silent in F; a complete verifier must report ERROR in E;");
    println!("since no process can tell E and F apart, no wait-free verifier can do both —");
    println!("regardless of the consensus power of its base objects (Theorem 5.1).");
    println!();
    println!("The paper evades this by verifying the DRV counterpart A* instead (Figures 7–11);");
    println!("see the quickstart and accountable_kv examples.");

    assert!(demo.executions_are_indistinguishable());
    assert!(demo.e_violates_linearizability());
    assert!(demo.f_is_linearizable());
}
