//! Producer/consumer work distribution over a lossy queue, with a decoupled
//! background verifier (Figure 12 of the paper).
//!
//! Producers enqueue jobs and consumers dequeue them through the decoupled producer
//! object, which returns immediately (verification is off the critical path). A
//! separate verifier thread scans the published view tuples and eventually reports the
//! lost job together with a forensic witness history.
//!
//! ```text
//! cargo run --example faulty_queue_forensics
//! ```

use linrv_check::{GenLinObject, LinSpec};
use linrv_core::decoupled::decoupled;
use linrv_history::{OpValue, ProcessId};
use linrv_runtime::faulty::LossyQueue;
use linrv_runtime::ConcurrentObject;
use linrv_spec::ops::queue;
use linrv_spec::QueueSpec;
use std::sync::Arc;

fn main() {
    println!(
        "{}",
        linrv_examples::banner("work queue with background verification")
    );

    // The work queue silently drops every 5th job — a realistic "lost wakeup" bug.
    let (producer, verifier) = decoupled(LossyQueue::new(5), LinSpec::new(QueueSpec::new()), 2);
    let producer = Arc::new(producer);

    let jobs = 12i64;
    let (submitted, completed) = std::thread::scope(|scope| {
        let submitter = {
            let producer = Arc::clone(&producer);
            scope.spawn(move || {
                let p = ProcessId::new(0);
                for job in 1..=jobs {
                    producer.apply(p, &queue::enqueue(job));
                }
                jobs
            })
        };
        let worker = {
            let producer = Arc::clone(&producer);
            scope.spawn(move || {
                let p = ProcessId::new(1);
                let mut done = 0i64;
                let mut idle_rounds = 0;
                while idle_rounds < 10 {
                    match producer.apply(p, &queue::dequeue()) {
                        OpValue::Int(_) => {
                            done += 1;
                            idle_rounds = 0;
                        }
                        _ => idle_rounds += 1,
                    }
                }
                done
            })
        };
        (submitter.join().unwrap(), worker.join().unwrap())
    });

    println!("submitted {submitted} jobs, workers completed {completed}");
    assert!(
        completed < submitted,
        "the lossy queue should have lost jobs"
    );

    // The background verifier (here run after the fact; in production it would run
    // continuously) detects that the published history is not linearizable.
    let witnesses = verifier.run(3);
    match witnesses.first() {
        Some(witness) => {
            println!("verifier reported ERROR; forensic witness (first lines):");
            for line in witness.to_string().lines().take(8) {
                println!("  {line}");
            }
            assert!(!LinSpec::new(QueueSpec::new()).contains(witness));
        }
        None => {
            // The losses may be masked by concurrency in rare schedules; re-check once
            // more after quiescence, where detection is guaranteed for this workload.
            let outcome = verifier.check_once();
            println!("verifier verdict after quiescence: {:?}", outcome.is_ok());
            assert!(!outcome.is_ok(), "lost jobs must eventually be detected");
        }
    }
    println!("every lost job is now attributable to the queue implementation.");
}
