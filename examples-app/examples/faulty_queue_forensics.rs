//! Producer/consumer work distribution over a lossy queue, with verification off
//! the critical path (Figure 12 of the paper).
//!
//! Producers enqueue jobs and consumers dequeue them through a monitor in
//! `Observe` mode, whose operations return immediately (the membership test never
//! runs on the critical path). Asynchronous checks then detect the lost job and
//! produce a forensic witness history.
//!
//! ```text
//! cargo run --example faulty_queue_forensics
//! ```

use linrv::prelude::*;
use linrv::render_timeline;
use linrv::runtime::faulty::LossyQueue;

fn main() {
    println!(
        "{}",
        linrv_examples::banner("work queue with background verification")
    );

    // The work queue silently drops every 5th job — a realistic "lost wakeup" bug.
    // Observe mode: operations publish their view tuples and return immediately.
    let monitor = Monitor::builder(QueueSpec::new())
        .processes(2)
        .mode(Mode::Observe)
        .build(LossyQueue::new(5));

    let jobs = 12i64;
    let (submitted, completed) = std::thread::scope(|scope| {
        let submitter = {
            let session = monitor.register().expect("submitter slot");
            scope.spawn(move || {
                for job in 1..=jobs {
                    session.enqueue(job).expect("observe mode never gates");
                }
                jobs
            })
        };
        let worker = {
            let session = monitor.register().expect("worker slot");
            scope.spawn(move || {
                let mut done = 0i64;
                let mut idle_rounds = 0;
                while idle_rounds < 10 {
                    match session.dequeue().expect("observe mode never gates") {
                        Some(_) => {
                            done += 1;
                            idle_rounds = 0;
                        }
                        None => idle_rounds += 1,
                    }
                }
                done
            })
        };
        (submitter.join().unwrap(), worker.join().unwrap())
    });

    println!("submitted {submitted} jobs, workers completed {completed}");

    // After the fact, a forensics session drains the queue to quiescence: now the
    // dropped jobs are provably missing from the published history (they were
    // acknowledged but can never be dequeued again).
    let forensics = monitor.register().expect("recycled slot");
    let mut recovered = completed;
    while forensics
        .dequeue()
        .expect("observe mode never gates")
        .is_some()
    {
        recovered += 1;
    }
    assert!(
        recovered < submitted,
        "the lossy queue should have lost jobs"
    );
    println!("drained to quiescence: only {recovered} of {submitted} jobs ever came out");

    // The asynchronous check (here run after the fact; in production a background
    // thread would poll it) detects that the published history is not linearizable.
    let verdict = monitor.check();
    match verdict.witness() {
        Some(witness) => {
            println!("verifier reported a violation; forensic witness (first lines):");
            for line in render_timeline(witness).lines().take(8) {
                println!("  {line}");
            }
            assert!(!linrv::is_linearizable(QueueSpec::new(), witness));
        }
        None => unreachable!("lost jobs must eventually be detected after quiescence"),
    }
    println!("every lost job is now attributable to the queue implementation.");
}
